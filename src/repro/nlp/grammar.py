"""Recursive-descent parser for the structured English of Section IV-B.

The grammar (positive form, from the paper)::

    sentence     ::= (subclause,)* clauses (, subclause)*
    subclause    ::= subordinator clauses
    clauses      ::= clause [, conjunction clause]
    clause       ::= [modifier] subject predicate [constraint]
    subject      ::= substantive ((and|or) substantive)*
    predicates   ::= [modality] predicate
    predicate    ::= verb | be participle | be complement
    constraint   ::= in t

Parsing proceeds in two passes: the sentence is first segmented into comma
groups and classified (leading subclauses, main clause group, trailing
subclauses), then each group is parsed into :class:`Clause` records.  The
result mirrors the syntax tree of Figure 2; :mod:`repro.nlp.tree` renders
it.

Disambiguation rules implied by the paper's appendix:

* a comma group starting with ``and``/``or`` continues the preceding
  subclause, unless it is the final group, which is always the main clause
  (Req-17.2, Req-44);
* a subordinator *inside* a group splits it: the remainder becomes a
  trailing subclause (Req-01 "… whenever the LSTAT is powered on");
* ``next`` at the start of the main clause is a temporal marker on that
  clause (Req-13.1 "next arterial line is selected");
* repeated ``if`` groups nest (Req-17.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from . import lexicon
from .tokenizer import Token, tokenize


class StructuredEnglishError(ValueError):
    """Raised when a sentence falls outside the supported grammar."""

    def __init__(self, message: str, sentence: str = "") -> None:
        details = f"{message}" + (f" in: {sentence!r}" if sentence else "")
        super().__init__(details)
        self.sentence = sentence


@dataclass(frozen=True)
class TimeConstraint:
    """The grammar's ``constraint ::= in t`` with a unit."""

    value: int
    unit: str = "seconds"

    def ticks(self, unit_seconds: int = 1) -> int:
        """The number of discrete time ticks (Section IV-E)."""
        seconds = self.value * lexicon.TIME_UNITS[self.unit]
        if seconds % unit_seconds:
            raise ValueError(
                f"{seconds}s is not a multiple of the {unit_seconds}s unit time"
            )
        return seconds // unit_seconds


@dataclass
class Clause:
    """One clause: modifier, subject(s), predicate, optional constraint."""

    subjects: List[str]  # normalised substantives, e.g. "pulse_wave"
    subject_conjunction: Optional[str]  # "and" | "or" when > 1 subject
    verb: Optional[str]  # lemma of the main verb (None for be+complement)
    passive: bool = False
    progressive: bool = False
    complement: Optional[str] = None  # adjective/adverb/prep complement
    particle: Optional[str] = None  # "on" in "turned on"
    object: Optional[str] = None  # normalised object of an active verb
    negated: bool = False
    modality: Optional[str] = None
    modifier: Optional[str] = None  # "eventually", "always", ...
    next_marker: bool = False  # leading "next"
    constraint: Optional[TimeConstraint] = None
    text: str = ""

    def key_phrase(self) -> str:
        """Human-readable summary used in tree rendering and reports."""
        return self.text or " ".join(self.subjects)


@dataclass
class ClauseGroup:
    """``clauses ::= clause [, conjunction clause]``."""

    clauses: List[Clause]
    connectives: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.connectives) != max(0, len(self.clauses) - 1):
            raise ValueError("need exactly one connective between clauses")


@dataclass
class SubClause:
    """``subclause ::= subordinator clauses``."""

    subordinator: str
    group: ClauseGroup


@dataclass
class Sentence:
    """A parsed requirement sentence."""

    pre: List[SubClause]
    main: ClauseGroup
    post: List[SubClause]
    text: str = ""

    def all_clauses(self) -> List[Clause]:
        clauses: List[Clause] = []
        for sub in self.pre:
            clauses.extend(sub.group.clauses)
        clauses.extend(self.main.clauses)
        for sub in self.post:
            clauses.extend(sub.group.clauses)
        return clauses


# ---------------------------------------------------------------------------
# Sentence segmentation


def parse_sentence(text: str) -> Sentence:
    """Parse one requirement sentence into its clause structure."""
    tokens = [t for t in tokenize(text) if t.text not in (".", ";", "!", "?")]
    if not tokens:
        raise StructuredEnglishError("empty sentence", text)
    groups = _split_comma_groups(tokens)
    groups = _split_inline_subordinators(groups)
    pre, main_group, post = _classify_groups(groups, text)

    pre_subclauses = [
        SubClause(sub, _parse_clause_group(body, text))
        for sub, body in pre
    ]
    post_subclauses = [
        SubClause(sub, _parse_clause_group(body, text))
        for sub, body in post
    ]
    main = _parse_clause_group(main_group, text)
    return Sentence(pre_subclauses, main, post_subclauses, text=text)


def _split_comma_groups(tokens: Sequence[Token]) -> List[List[Token]]:
    groups: List[List[Token]] = [[]]
    for token in tokens:
        if token.text == ",":
            if groups[-1]:
                groups.append([])
        else:
            groups[-1].append(token)
    if not groups[-1]:
        groups.pop()
    return groups


def _split_inline_subordinators(groups: List[List[Token]]) -> List[List[Token]]:
    """Split a group at an interior subordinator (Req-01, Req-49)."""
    result: List[List[Token]] = []
    for group in groups:
        current: List[Token] = []
        for position, token in enumerate(group):
            interior = position > 0 and token.text in lexicon.SUBORDINATORS
            # "next" only acts as a subordinator in clause-initial position;
            # interior "next" ("the next page") stays part of the clause.
            if interior and token.text != "next":
                result.append(current)
                current = []
            current.append(token)
        if current:
            result.append(current)
    return result


def _classify_groups(
    groups: List[List[Token]], text: str
) -> Tuple[
    List[Tuple[str, List[List[Token]]]],
    List[List[Token]],
    List[Tuple[str, List[List[Token]]]],
]:
    """Assign comma groups to leading subclauses, main clause, trailing
    subclauses.  Returns (pre, main groups, post); each subclause carries a
    list of clause groups (continuation groups join their subclause)."""
    if not groups:
        raise StructuredEnglishError("no clause found", text)

    pre: List[Tuple[str, List[List[Token]]]] = []
    post: List[Tuple[str, List[List[Token]]]] = []
    main: List[List[Token]] = []
    index = 0

    # Leading subclauses: groups starting with a subordinator, plus any
    # continuation groups starting with a conjunction — except the last
    # group overall, which is the main clause.  "next" marks a main clause
    # ("next manual mode is started"), not a subclause.
    while index < len(groups) - 1 and _starts_subclause(groups[index]):
        subordinator = groups[index][0].text
        body = [groups[index][1:]]
        index += 1
        while (
            index < len(groups) - 1
            and groups[index][0].text in lexicon.CONJUNCTIONS
            and not _looks_like_main_start(groups, index)
        ):
            body.append(groups[index])
            index += 1
        pre.append((subordinator, body))

    if index >= len(groups):
        raise StructuredEnglishError("sentence has no main clause", text)

    # Main clause: everything up to a trailing subordinator group.
    main = [groups[index]]
    index += 1
    while index < len(groups) and not _starts_subclause(groups[index]):
        main.append(groups[index])
        index += 1

    # Trailing subclauses.
    while index < len(groups):
        subordinator = groups[index][0].text
        body = [groups[index][1:]]
        index += 1
        while index < len(groups) and groups[index][0].text in lexicon.CONJUNCTIONS:
            body.append(groups[index])
            index += 1
        post.append((subordinator, body))

    return pre, main, post


def _starts_subclause(group: List[Token]) -> bool:
    """True when a comma group opens a subordinate clause."""
    return bool(group) and group[0].text in lexicon.SUBORDINATORS and group[0].text != "next"


def _looks_like_main_start(groups: List[List[Token]], index: int) -> bool:
    """A conjunction group is the main clause when every following group is
    a trailing subclause."""
    remaining = groups[index + 1 :]
    return all(_starts_subclause(g) for g in remaining)


# ---------------------------------------------------------------------------
# Clause parsing


def _parse_clause_group(bodies: List[List[Token]], text: str) -> ClauseGroup:
    """Parse one or more comma groups into a clause group.

    Each body may itself contain an inline conjunction of clauses ("an
    alarm is issued and override selection is provided").
    """
    clauses: List[Clause] = []
    connectives: List[str] = []
    for body in bodies:
        if not body:
            raise StructuredEnglishError("empty clause", text)
        if body[0].text in lexicon.CONJUNCTIONS and clauses:
            connectives.append(body[0].text)
            body = body[1:]
        elif clauses:
            connectives.append("and")
        for clause, connective in _split_inline_clauses(body, text):
            if connective is not None:
                connectives.append(connective)
            clauses.append(clause)
    return ClauseGroup(clauses, connectives)


def _split_inline_clauses(
    body: List[Token], text: str
) -> List[Tuple[Clause, Optional[str]]]:
    """Split "C1 and C2" into clauses when both sides have predicates."""
    for position, token in enumerate(body):
        if token.text in lexicon.CONJUNCTIONS and 0 < position < len(body) - 1:
            left, right = body[:position], body[position + 1 :]
            if _has_predicate(left) and _has_predicate(right):
                first = [(parse_clause(left, text), None)]
                rest = _split_inline_clauses(right, text)
                rest = [
                    (clause, token.text if connective is None else connective)
                    for clause, connective in rest
                ]
                return first + rest
    return [(parse_clause(body, text), None)]


def _has_predicate(tokens: Sequence[Token]) -> bool:
    return any(
        t.text in lexicon.BE_FORMS
        or t.text in lexicon.MODALITIES
        or t.text in lexicon.LINKING_VERBS
        or t.text in lexicon.DO_FORMS
        or (t.index != tokens[0].index and lexicon.verb_lemma(t.text) is not None)
        for t in tokens
    )


def parse_clause(tokens: Sequence[Token], sentence_text: str = "") -> Clause:
    """Parse ``[modifier] subject predicate [constraint]``."""
    words = [t.text for t in tokens]
    original = " ".join(words)

    # "then" is a filter construction like "the"/"a" (Req-13.3: "..., then
    # cuff is selected"): it carries no meaning beyond the implication the
    # subordinator already established.
    if words and words[0] == "then":
        words = words[1:]

    next_marker = False
    if words and words[0] == "next":
        next_marker = True
        words = words[1:]

    modifier = None
    if words and words[0] in lexicon.MODIFIERS:
        modifier = words[0]
        words = words[1:]

    words, constraint = _extract_constraint(words, sentence_text)

    boundary = _predicate_boundary(words, sentence_text, original)
    subject_words = words[:boundary]
    predicate_words = words[boundary:]

    # A modifier may also sit immediately before the predicate
    # ("the cuff will eventually be inflated" is out of grammar, but
    # "eventually the cuff will be inflated" after a subclause is common).
    subjects, subject_conjunction = _parse_subject(subject_words, sentence_text)
    clause = _parse_predicate(predicate_words, sentence_text, original)
    clause.subjects = subjects
    clause.subject_conjunction = subject_conjunction
    clause.modifier = modifier
    clause.next_marker = next_marker
    clause.constraint = constraint
    clause.text = original
    return clause


def _extract_constraint(
    words: List[str], text: str
) -> Tuple[List[str], Optional[TimeConstraint]]:
    """Strip a trailing "in|within <number> <unit>" constraint."""
    if len(words) >= 3 and words[-3] in ("in", "within"):
        number = lexicon.parse_number(words[-2])
        unit = words[-1]
        if number is not None and unit in lexicon.TIME_UNITS:
            return words[:-3], TimeConstraint(number, unit)
    return words, None


def _predicate_boundary(words: List[str], text: str, clause: str) -> int:
    """Index where the predicate starts.

    Preference order: first auxiliary (be/modal/do/linking verb), else the
    first verb-looking token past position zero (subjects never start at
    the predicate in the supported grammar).
    """
    for position, word in enumerate(words):
        if (
            word in lexicon.BE_FORMS
            or word in lexicon.MODALITIES
            or word in lexicon.DO_FORMS
            or word in lexicon.LINKING_VERBS
        ):
            if position == 0:
                raise StructuredEnglishError(
                    f"clause {clause!r} has no subject", text
                )
            return position
    for position, word in enumerate(words):
        if position == 0:
            continue
        if word in lexicon.DETERMINERS or word in lexicon.NEGATIONS:
            continue
        lemma = lexicon.verb_lemma(word)
        if lemma is not None and not lexicon.is_adjective(word):
            return position
    raise StructuredEnglishError(f"no predicate found in clause {clause!r}", text)


def _parse_subject(words: List[str], text: str) -> Tuple[List[str], Optional[str]]:
    """``subject ::= substantive ((and|or) substantive)*``."""
    meaningful = [w for w in words if w not in lexicon.DETERMINERS]
    if not meaningful:
        raise StructuredEnglishError("clause has no subject", text)
    substantives: List[List[str]] = [[]]
    conjunction: Optional[str] = None
    for word in meaningful:
        if word in lexicon.CONJUNCTIONS:
            if conjunction is not None and conjunction != word:
                raise StructuredEnglishError(
                    "mixed and/or in one subject is not supported", text
                )
            conjunction = word
            substantives.append([])
        else:
            substantives[-1].append(word)
    trimmed: List[List[str]] = []
    for parts in substantives:
        # Drop leading attributive adjectives ("a valid blood pressure" ->
        # blood_pressure) so the same entity yields the same proposition
        # whether the property is attributive or predicated (Req-28/44).
        while len(parts) > 1 and lexicon.is_adjective(parts[0]):
            parts = parts[1:]
        if parts:
            trimmed.append(parts)
    names = [normalise_name(parts) for parts in trimmed]
    if not names:
        raise StructuredEnglishError("clause has no subject", text)
    return names, conjunction


def _parse_predicate(words: List[str], text: str, clause: str) -> Clause:
    """Parse ``[modality] (verb | be participle | be complement)``."""
    if not words:
        raise StructuredEnglishError(f"no predicate in clause {clause!r}", text)
    result = Clause(subjects=[], subject_conjunction=None, verb=None)
    position = 0

    if words[position] in lexicon.MODALITIES:
        result.modality = words[position]
        if words[position] == "cannot":
            result.modality = "can"
            result.negated = True
        position += 1

    if position < len(words) and words[position] in lexicon.NEGATIONS:
        result.negated = True
        position += 1

    if position >= len(words):
        raise StructuredEnglishError(f"dangling modality in {clause!r}", text)

    word = words[position]
    if word in lexicon.DO_FORMS:
        # do-support: "does not sound"
        position += 1
        if position < len(words) and words[position] in lexicon.NEGATIONS:
            result.negated = True
            position += 1
        if position >= len(words):
            raise StructuredEnglishError(f"dangling do-form in {clause!r}", text)
        word = words[position]

    if word in lexicon.BE_FORMS or word in lexicon.LINKING_VERBS:
        position += 1
        # "is initially turned on", "is not corroborated", "will be inflated"
        while position < len(words) and (
            words[position] in lexicon.NEGATIONS
            or words[position] in lexicon.BE_FORMS
            or words[position].endswith("ly")
        ):
            if words[position] in lexicon.NEGATIONS:
                result.negated = True
            position += 1
        if position >= len(words):
            raise StructuredEnglishError(
                f"be-predicate without participle/complement in {clause!r}", text
            )
        head = words[position]
        rest = words[position + 1 :]
        if lexicon.is_adjective(head):
            result.complement = head
        elif lexicon.is_participle(head):
            result.verb = lexicon.participle_lemma(head)
            result.passive = True
            if rest and rest[0] in lexicon.PARTICLES:
                result.particle = rest[0]
                rest = rest[1:]
        elif lexicon.is_progressive(head):
            result.verb = lexicon.progressive_lemma(head)
            result.progressive = True
        elif head in lexicon.PREPOSITIONS:
            result.complement = normalise_name(
                [w for w in words[position:] if w not in lexicon.DETERMINERS]
            )
            rest = []
        else:
            # Unknown word after "be": treat as complement (open class).
            result.complement = head
        if rest and result.complement is None and rest[0] not in lexicon.PREPOSITIONS:
            # Passive with a trailing agent/goal phrase is out of scope but
            # tolerated; the phrase is ignored like the paper's filters.
            pass
        return result

    lemma = lexicon.verb_lemma(word)
    if lemma is None:
        raise StructuredEnglishError(
            f"unknown verb {word!r} in clause {clause!r}", text
        )
    result.verb = lemma
    rest = list(words[position + 1 :])
    if rest and rest[0] in lexicon.PARTICLES and (
        len(rest) == 1 or rest[1] in lexicon.DETERMINERS or rest[1] not in lexicon.PREPOSITIONS
    ):
        result.particle = rest[0]
        rest = rest[1:]
    object_words = [w for w in rest if w not in lexicon.DETERMINERS]
    if object_words:
        result.object = normalise_name(object_words)
    return result


def normalise_name(parts: Sequence[str]) -> str:
    """Join words into a proposition-name fragment (Section IV-C: "add '_'
    to contact relative words together")."""
    cleaned = []
    for part in parts:
        cleaned.append(part.replace("-", "_").replace("'", ""))
    return "_".join(cleaned)
