"""Antonym dictionary and the "online lookup" oracle of Algorithm 1.

The paper's semantic reasoning groups adjectives/adverbs ("antonym
candidates") into pairs of semantically contrasting words by consulting a
user-specified antonym dictionary, falling back to an online lookup
(``online(w)`` in Algorithm 1).  Offline, the oracle is a curated
dictionary plus English negation morphology (``un-``, ``in-``, ``dis-``,
``non-``, ``-less``), which covers the vocabulary of the case studies and,
unlike a web lookup, is deterministic.

The dictionary also records which member of a pair carries the *positive*
meaning.  The paper chooses the positive form "randomly" when no polarity
is known; we default to the curated polarity and fall back to a stable
deterministic choice so repeated runs agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

#: Curated antonym pairs, (positive form, negative form).
DEFAULT_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("available", "unavailable"),
    ("available", "lost"),
    ("valid", "invalid"),
    ("enabled", "disabled"),
    ("on", "off"),
    ("high", "low"),
    ("ok", "low"),  # "Air Ok signal remains low" (Req-08)
    ("open", "closed"),
    ("online", "offline"),
    ("active", "inactive"),
    ("locked", "unlocked"),
    ("complete", "incomplete"),
    ("full", "empty"),
    ("busy", "idle"),
    ("normal", "abnormal"),
    ("ready", "unready"),
    ("connected", "disconnected"),
    ("present", "absent"),
    ("up", "down"),
)

_NEGATION_PREFIXES: Tuple[str, ...] = ("un", "in", "dis", "non", "im", "ir")


@dataclass
class AntonymDictionary:
    """Bidirectional antonym map with polarity information."""

    pairs: Dict[str, Set[str]] = field(default_factory=dict)
    positive_forms: Set[str] = field(default_factory=set)

    @staticmethod
    def default() -> "AntonymDictionary":
        dictionary = AntonymDictionary()
        for positive, negative in DEFAULT_PAIRS:
            dictionary.add_pair(positive, negative)
        return dictionary

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[str, str]]) -> "AntonymDictionary":
        dictionary = AntonymDictionary()
        for positive, negative in pairs:
            dictionary.add_pair(positive, negative)
        return dictionary

    def add_pair(self, positive: str, negative: str) -> None:
        positive, negative = positive.lower(), negative.lower()
        self.pairs.setdefault(positive, set()).add(negative)
        self.pairs.setdefault(negative, set()).add(positive)
        self.positive_forms.add(positive)
        self.positive_forms.discard(negative)

    def signature(self) -> Tuple:
        """Stable content signature of the dictionary.

        Two dictionaries with equal signatures answer every
        :meth:`lookup` / :meth:`is_positive` query identically (the
        morphology rules are fixed), so cached semantic analyses keyed by
        this signature are exact across dictionaries, sessions and worker
        processes.  ``PYTHONHASHSEED``-free by construction.
        """
        return (
            tuple(
                (word, tuple(sorted(antonyms)))
                for word, antonyms in sorted(self.pairs.items())
            ),
            tuple(sorted(self.positive_forms)),
        )

    def lookup(self, word: str) -> FrozenSet[str]:
        """The ``online(w)`` oracle: known antonyms of *word*.

        Combines the curated table with negation morphology, so unknown
        vocabulary such as "reachable"/"unreachable" still pairs up.
        """
        word = word.lower()
        antonyms: Set[str] = set(self.pairs.get(word, ()))
        for prefix in _NEGATION_PREFIXES:
            if word.startswith(prefix):
                antonyms.add(word[len(prefix):])
            else:
                antonyms.add(prefix + word)
        if word.endswith("less"):
            antonyms.add(word[:-4] + "ful")
        if word.endswith("ful"):
            antonyms.add(word[:-3] + "less")
        return frozenset(antonyms)

    def are_antonyms(self, left: str, right: str) -> bool:
        return right.lower() in self.lookup(left)

    def is_positive(self, word: str, antonym: str) -> bool:
        """Decide which member of a pair is the positive form.

        Priority: curated polarity, then morphology (the unprefixed word is
        positive), then a stable lexicographic tie-break (the paper:
        "the selection for the positive form is randomly" — we make it
        deterministic instead).
        """
        word, antonym = word.lower(), antonym.lower()
        if word in self.positive_forms and antonym not in self.positive_forms:
            return True
        if antonym in self.positive_forms and word not in self.positive_forms:
            return False
        for prefix in _NEGATION_PREFIXES:
            if word.startswith(prefix) and word[len(prefix):] == antonym:
                return False
            if antonym.startswith(prefix) and antonym[len(prefix):] == word:
                return True
        return word < antonym
