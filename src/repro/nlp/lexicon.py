"""Lexicon for the structured-English subset of Section IV-B.

The paper relies on the Stanford parser for part-of-speech information; in
this offline reproduction a curated lexicon plus morphological rules covers
the restricted grammar.  The closed word classes (modals, subordinators,
modifiers, determiners, conjunctions, be-forms) are exactly those the
grammar of Section IV-B enumerates; the open classes (verbs, adjectives)
hold the vocabulary of the three case studies and common requirement
vocabulary, and unknown words fall back to morphology-based guessing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

# --------------------------------------------------------------- closed sets

MODALITIES: FrozenSet[str] = frozenset(
    {"shall", "should", "will", "would", "can", "could", "must", "may", "cannot"}
)

#: Modalities the translator maps to the Eventually operator: the appendix
#: translates "the cuff will be inflated" to a lozenge (Req-01, Req-07).
FUTURE_MODALITIES: FrozenSet[str] = frozenset({"will", "would"})

SUBORDINATORS: FrozenSet[str] = frozenset(
    {"if", "after", "once", "when", "whenever", "while", "before", "until", "next"}
)

MODIFIERS: FrozenSet[str] = frozenset(
    {"globally", "always", "sometimes", "eventually"}
)

#: Modifiers mapping to Eventually; the rest map to Always.
EVENTUALLY_MODIFIERS: FrozenSet[str] = frozenset({"sometimes", "eventually"})

CONJUNCTIONS: FrozenSet[str] = frozenset({"and", "or"})

DETERMINERS: FrozenSet[str] = frozenset(
    {"the", "a", "an", "this", "that", "these", "those", "its", "their", "some", "any"}
)

BE_FORMS: FrozenSet[str] = frozenset(
    {"is", "are", "was", "were", "be", "been", "being", "am"}
)

#: Copular verbs treated like *be* for complement extraction ("remains low").
LINKING_VERBS: FrozenSet[str] = frozenset(
    {"remain", "remains", "remained", "become", "becomes", "became", "stay",
     "stays", "stayed", "get", "gets", "got"}
)

DO_FORMS: FrozenSet[str] = frozenset({"do", "does", "did"})

NEGATIONS: FrozenSet[str] = frozenset({"not", "never", "no"})

PARTICLES: FrozenSet[str] = frozenset({"on", "off", "up", "down", "in", "out"})

PREPOSITIONS: FrozenSet[str] = frozenset(
    {"in", "to", "from", "at", "of", "for", "with", "into", "by", "over", "within"}
)

TIME_UNITS: Dict[str, int] = {
    # canonical number of base ticks (seconds) per unit
    "tick": 1,
    "ticks": 1,
    "second": 1,
    "seconds": 1,
    "sec": 1,
    "secs": 1,
    "minute": 60,
    "minutes": 60,
    "hour": 3600,
    "hours": 3600,
}

NUMBER_WORDS: Dict[str, int] = {
    "zero": 0, "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
    "eleven": 11, "twelve": 12, "fifteen": 15, "twenty": 20, "thirty": 30,
    "sixty": 60, "ninety": 90, "hundred": 100,
}

# ----------------------------------------------------------------- open sets

#: Base forms of verbs across the CARA, TELEPROMISE and robot case studies.
VERBS: FrozenSet[str] = frozenset(
    {
        "activate", "add", "alarm", "answer", "arrive", "browse", "buy",
        "cancel", "carry", "charge", "check", "clear", "close", "collect",
        "complete", "confirm", "connect", "control", "corroborate", "deliver",
        "deactivate", "detect", "disable", "display", "drive", "drop",
        "enable", "enter", "exit", "fail", "fill", "find", "finish", "grant",
        "inflate", "initialize", "issue", "leave", "log", "lose", "monitor",
        "move", "notify", "open", "operate", "order", "pay", "perform",
        "pick", "place", "plug", "poll", "post", "power", "press", "process",
        "provide", "publish", "pump", "read", "register", "reject", "release",
        "remind", "remove", "report", "request", "reserve", "reset",
        "respond", "resume", "return", "run", "save", "search", "select",
        "send", "serve", "ship", "show", "sound", "start", "stop", "store",
        "submit", "suspend", "switch", "terminate", "trigger", "turn",
        "update", "validate", "verify", "visit", "wait", "warn",
    }
)

#: Adjectives/adverbs (the paper's "antonym candidates").
ADJECTIVES: FrozenSet[str] = frozenset(
    {
        "active", "available", "busy", "clear", "closed", "complete",
        "connected", "disabled", "empty", "enabled", "full",
        "high", "idle", "inactive", "incomplete", "invalid", "locked", "low",
        "lost", "normal", "occupied", "off", "offline", "ok", "on", "online", "open",
        "operational", "pending", "ready", "unavailable",
        "unlocked", "valid",
    }
)

#: Irregular past participles -> base form.
IRREGULAR_PARTICIPLES: Dict[str, str] = {
    "been": "be",
    "begun": "begin",
    "broken": "break",
    "brought": "bring",
    "built": "build",
    "chosen": "choose",
    "done": "do",
    "driven": "drive",
    "found": "find",
    "given": "give",
    "gone": "go",
    "got": "get",
    "held": "hold",
    "kept": "keep",
    "left": "leave",
    "lost": "lose",
    "made": "make",
    "paid": "pay",
    "put": "put",
    "read": "read",
    "run": "run",
    "sent": "send",
    "set": "set",
    "shown": "show",
    "shut": "shut",
    "taken": "take",
    "told": "tell",
    "turned": "turn",
    "won": "win",
    "written": "write",
}


def is_verb_form(word: str) -> bool:
    """True when *word* looks like an inflected or base verb."""
    return verb_lemma(word) is not None


def verb_lemma(word: str) -> Optional[str]:
    """The base form of a verb token, or ``None`` if not recognised."""
    word = word.lower()
    if word in IRREGULAR_PARTICIPLES:
        return IRREGULAR_PARTICIPLES[word]
    if word in VERBS:
        return word
    if word in BE_FORMS:
        return "be"
    if word in LINKING_VERBS:
        return _strip_third_person(word)
    # third person singular: presses -> press, monitors -> monitor
    stripped = _strip_third_person(word)
    if stripped in VERBS:
        return stripped
    # past/participle: pressed -> press, terminated -> terminate
    participle = participle_lemma(word)
    if participle is not None:
        return participle
    # progressive: running -> run, monitoring -> monitor
    progressive = progressive_lemma(word)
    if progressive is not None:
        return progressive
    return None


def _strip_third_person(word: str) -> str:
    if word.endswith("ies") and len(word) > 4:
        return word[:-3] + "y"
    if word.endswith(("ses", "xes", "zes", "ches", "shes")):
        return word[:-2]
    if word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    return word


def participle_lemma(word: str) -> Optional[str]:
    """Base form of a regular past participle, or ``None``."""
    word = word.lower()
    if word in IRREGULAR_PARTICIPLES:
        return IRREGULAR_PARTICIPLES[word]
    if not word.endswith("ed") or len(word) < 4:
        return None
    stem = word[:-2]
    for candidate in (stem, stem + "e", stem[:-1] if stem and stem[-1] == stem[-2:-1] else stem):
        if candidate in VERBS:
            return candidate
    # doubled final consonant: plugged -> plug
    if len(stem) >= 2 and stem[-1] == stem[-2] and stem[:-1] in VERBS:
        return stem[:-1]
    return None


def progressive_lemma(word: str) -> Optional[str]:
    """Base form of an ``-ing`` form, or ``None``."""
    word = word.lower()
    if not word.endswith("ing") or len(word) < 5:
        return None
    stem = word[:-3]
    if stem in VERBS:
        return stem
    if stem + "e" in VERBS:
        return stem + "e"
    if len(stem) >= 2 and stem[-1] == stem[-2] and stem[:-1] in VERBS:
        return stem[:-1]
    return None


def is_participle(word: str) -> bool:
    """True for past participles usable in the passive voice."""
    return participle_lemma(word) is not None


def is_progressive(word: str) -> bool:
    return progressive_lemma(word) is not None


def is_adjective(word: str) -> bool:
    word = word.lower()
    if word in ADJECTIVES:
        return True
    # un-/in-/dis- negations of known adjectives are adjectives too.
    for prefix in ("un", "in", "dis", "non"):
        if word.startswith(prefix) and word[len(prefix):] in ADJECTIVES:
            return True
    if word.endswith("less"):
        return True
    return False


def parse_number(word: str) -> Optional[int]:
    if word.isdigit():
        return int(word)
    return NUMBER_WORDS.get(word.lower())
