"""Syntax-tree view of parsed sentences and an ASCII renderer.

Reproduces Figure 2 of the paper: the tree for Req-17 shows the sentence
decomposed into a ``when`` subclause and a main clause, each with subject
and predicate leaves, and the ``eventually`` modifier attached to the main
clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .grammar import Clause, ClauseGroup, Sentence, SubClause


@dataclass
class TreeNode:
    """A node of the rendered syntax tree."""

    label: str
    text: str = ""
    children: List["TreeNode"] = field(default_factory=list)

    def add(self, label: str, text: str = "") -> "TreeNode":
        child = TreeNode(label, text)
        self.children.append(child)
        return child


def syntax_tree(sentence: Sentence) -> TreeNode:
    """Build the Figure-2 style syntax tree for a parsed sentence."""
    root = TreeNode("sentence", sentence.text)
    for sub in sentence.pre:
        _subclause_node(root, sub)
    _group_node(root, sentence.main, label="clause")
    for sub in sentence.post:
        _subclause_node(root, sub)
    return root


def _subclause_node(parent: TreeNode, sub: SubClause) -> None:
    node = parent.add("subclause")
    node.add("subordinator", sub.subordinator)
    _group_node(node, sub.group, label="clause")


def _group_node(parent: TreeNode, group: ClauseGroup, label: str) -> None:
    for position, clause in enumerate(group.clauses):
        if position > 0:
            parent.add("conjunction", group.connectives[position - 1])
        _clause_node(parent, clause, label)


def _clause_node(parent: TreeNode, clause: Clause, label: str) -> None:
    node = parent.add(label)
    if clause.modifier:
        node.add("modifier", clause.modifier)
    if clause.next_marker:
        node.add("subordinator", "next")
    subject = (
        f" {clause.subject_conjunction} ".join(clause.subjects)
        if clause.subject_conjunction
        else " ".join(clause.subjects)
    )
    node.add("subject", subject)
    node.add("predicate", _predicate_text(clause))
    if clause.constraint:
        node.add("constraint", f"in {clause.constraint.value} {clause.constraint.unit}")


def _predicate_text(clause: Clause) -> str:
    parts: List[str] = []
    if clause.modality:
        parts.append(clause.modality)
    if clause.negated:
        parts.append("not")
    if clause.verb is not None and clause.passive:
        parts.extend(["be", clause.verb + " (passive)"])
    elif clause.verb is not None and clause.progressive:
        parts.extend(["be", clause.verb + " (progressive)"])
    elif clause.verb is not None:
        parts.append(clause.verb)
    if clause.particle:
        parts.append(clause.particle)
    if clause.complement:
        parts.extend(["be", clause.complement])
    if clause.object:
        parts.append(clause.object)
    return " ".join(parts)


def render(node: TreeNode, indent: str = "") -> str:
    """Render a tree as indented ASCII, one node per line."""
    own = f"{indent}{node.label}"
    if node.text:
        own += f": {node.text}"
    lines = [own]
    for position, child in enumerate(node.children):
        last = position == len(node.children) - 1
        branch = "`-- " if last else "|-- "
        continuation = "    " if last else "|   "
        sub = render(child, "")
        sub_lines = sub.splitlines()
        lines.append(f"{indent}{branch}{sub_lines[0]}")
        lines.extend(f"{indent}{continuation}{line}" for line in sub_lines[1:])
    return "\n".join(lines)


def render_sentence(sentence: Sentence) -> str:
    """Parse-tree rendering used by the Figure-2 benchmark and examples."""
    return render(syntax_tree(sentence))
