"""NLP substrate: tokenizer, structured-English grammar, dependencies,
antonym dictionary — the offline stand-in for the Stanford parser."""

from .antonyms import DEFAULT_PAIRS, AntonymDictionary
from .dependencies import (
    Dependency,
    candidate_subjects,
    clause_dependencies,
    extract_dependencies,
    sentence_vocabulary,
    subject_dependents,
)
from .grammar import (
    Clause,
    ClauseGroup,
    Sentence,
    StructuredEnglishError,
    SubClause,
    TimeConstraint,
    normalise_name,
    parse_clause,
    parse_sentence,
)
from .tokenizer import Token, split_sentences, tokenize, tokenize_document
from .tree import TreeNode, render, render_sentence, syntax_tree

__all__ = [
    "AntonymDictionary",
    "Clause",
    "ClauseGroup",
    "DEFAULT_PAIRS",
    "Dependency",
    "Sentence",
    "StructuredEnglishError",
    "SubClause",
    "TimeConstraint",
    "Token",
    "TreeNode",
    "candidate_subjects",
    "clause_dependencies",
    "extract_dependencies",
    "normalise_name",
    "parse_clause",
    "parse_sentence",
    "render",
    "render_sentence",
    "sentence_vocabulary",
    "split_sentences",
    "subject_dependents",
    "syntax_tree",
    "tokenize",
    "tokenize_document",
]
