"""The time-abstraction optimisation of Section IV-E.

Given the set ``Theta = {theta_0, ..., theta_n}`` of lengths of consecutive
``Next`` chains in a specification, the paper rewrites each chain of
``theta_i`` operators into ``theta'_i`` operators via a common divisor ``d``,
introducing an arrival error ``Delta_i``:

    theta_i = theta'_i * d + Delta_i,   -d < Delta_i < d          (Eq. 1)

subject to a user bound ``sum |Delta_i| <= B`` and a per-action sign
restriction (an action may arrive early, ``Delta_i >= 0``, or late,
``Delta_i <= 0``, but not both).  The objectives, in lexicographic order,
are to minimise ``sum theta'_i`` and then ``sum |Delta_i|``  (Eq. 2).

Two solvers are provided:

* :func:`solve_reference` — exact enumeration of the divisor with a
  knapsack-style assignment of per-action options; serves as the oracle in
  tests and as the fast path in the pipeline.
* :func:`solve_bitblast` — the paper's route: the constraint system is
  bit-blasted to CNF (standing in for Yices 2) and the two objectives are
  minimised by binary search over the CDCL solver.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sat.cdcl import CDCLSolver
from .bitvec import BitVecBuilder


class Sign(enum.Enum):
    """Allowed arrival-error direction for one action (Section IV-E)."""

    EARLY = "early"  # Delta >= 0: the event happens earlier after rewriting
    LATE = "late"  # Delta <= 0: the event happens later
    EITHER = "either"  # the driver may choose a direction


@dataclass(frozen=True)
class TimeAbstractionProblem:
    """Inputs of Eq. (1)/(2): distinct chain lengths, budget, signs."""

    thetas: Tuple[int, ...]
    bound: int
    signs: Tuple[Sign, ...]

    @staticmethod
    def of(
        thetas: Sequence[int],
        bound: int,
        signs: Optional[Sequence[Sign]] = None,
    ) -> "TimeAbstractionProblem":
        thetas = tuple(thetas)
        if len(set(thetas)) != len(thetas):
            raise ValueError("chain lengths must be distinct (paper Eq. 1)")
        if any(theta <= 0 for theta in thetas):
            raise ValueError("chain lengths must be positive")
        if bound < 0:
            raise ValueError("error budget must be non-negative")
        if signs is None:
            signs = (Sign.EARLY,) * len(thetas)
        signs = tuple(signs)
        if len(signs) != len(thetas):
            raise ValueError("one sign restriction per chain length required")
        return TimeAbstractionProblem(thetas, bound, signs)


@dataclass(frozen=True)
class TimeAbstractionSolution:
    """A satisfying assignment of Eq. (1) with the achieved objectives."""

    divisor: int
    scaled: Tuple[int, ...]  # theta'_i
    errors: Tuple[int, ...]  # Delta_i, signed
    cost_next: int  # sum theta'_i
    cost_error: int  # sum |Delta_i|

    def scaled_length(self, theta: int, problem: TimeAbstractionProblem) -> int:
        return self.scaled[problem.thetas.index(theta)]

    def check(self, problem: TimeAbstractionProblem) -> None:
        """Validate the solution against Eq. (1); raises on violation."""
        if self.divisor < 1:
            raise AssertionError("divisor must be positive")
        for theta, scaled, error, sign in zip(
            problem.thetas, self.scaled, self.errors, problem.signs
        ):
            if theta != scaled * self.divisor + error:
                raise AssertionError(f"Eq. (1) violated for theta={theta}")
            if not (-self.divisor < error < self.divisor):
                raise AssertionError(f"|Delta| < d violated for theta={theta}")
            if sign is Sign.EARLY and error < 0:
                raise AssertionError("sign restriction (early) violated")
            if sign is Sign.LATE and error > 0:
                raise AssertionError("sign restriction (late) violated")
        if sum(abs(e) for e in self.errors) > problem.bound:
            raise AssertionError("error budget exceeded")
        if sum(self.scaled) != self.cost_next:
            raise AssertionError("cost_next mismatch")
        if sum(abs(e) for e in self.errors) != self.cost_error:
            raise AssertionError("cost_error mismatch")


def gcd_reduction(thetas: Sequence[int]) -> TimeAbstractionSolution:
    """The conservative zero-error reduction: divide by the GCD."""
    if not thetas:
        return TimeAbstractionSolution(1, (), (), 0, 0)
    divisor = 0
    for theta in thetas:
        divisor = math.gcd(divisor, theta)
    scaled = tuple(theta // divisor for theta in thetas)
    return TimeAbstractionSolution(
        divisor, scaled, (0,) * len(thetas), sum(scaled), 0
    )


# --------------------------------------------------------------------------
# Exact reference solver


def _options_for(theta: int, divisor: int, sign: Sign) -> List[Tuple[int, int]]:
    """Feasible (theta', Delta) pairs for one action under a fixed divisor."""
    remainder = theta % divisor
    options: List[Tuple[int, int]] = []
    if remainder == 0:
        return [(theta // divisor, 0)]
    if sign in (Sign.EARLY, Sign.EITHER):
        options.append((theta // divisor, remainder))
    if sign in (Sign.LATE, Sign.EITHER):
        options.append((theta // divisor + 1, remainder - divisor))
    return options


def solve_reference(problem: TimeAbstractionProblem) -> TimeAbstractionSolution:
    """Exact lexicographic optimum by divisor enumeration + budget DP."""
    best: Optional[TimeAbstractionSolution] = None
    if not problem.thetas:
        return TimeAbstractionSolution(1, (), (), 0, 0)
    for divisor in range(1, max(problem.thetas) + 2):
        candidate = _best_for_divisor(problem, divisor)
        if candidate is None:
            continue
        if best is None or (candidate.cost_next, candidate.cost_error) < (
            best.cost_next,
            best.cost_error,
        ):
            best = candidate
    assert best is not None, "divisor 1 (the identity) is always feasible"
    best.check(problem)
    return best


def _best_for_divisor(
    problem: TimeAbstractionProblem, divisor: int
) -> Optional[TimeAbstractionSolution]:
    """Optimal assignment for a fixed divisor via DP over the error budget."""
    # dp maps used-budget -> (sum theta', choices)
    dp: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {0: (0, ())}
    for theta, sign in zip(problem.thetas, problem.signs):
        options = _options_for(theta, divisor, sign)
        next_dp: Dict[int, Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
        for used, (total, choices) in dp.items():
            for scaled, error in options:
                new_used = used + abs(error)
                if new_used > problem.bound:
                    continue
                entry = (total + scaled, choices + ((scaled, error),))
                existing = next_dp.get(new_used)
                if existing is None or entry[0] < existing[0]:
                    next_dp[new_used] = entry
        dp = next_dp
        if not dp:
            return None
    used, (total, choices) = min(
        dp.items(), key=lambda item: (item[1][0], item[0])
    )
    scaled = tuple(choice[0] for choice in choices)
    errors = tuple(choice[1] for choice in choices)
    return TimeAbstractionSolution(divisor, scaled, errors, total, used)


# --------------------------------------------------------------------------
# Bit-blasting solver (the paper's Yices-2 route)


def solve_bitblast(problem: TimeAbstractionProblem) -> TimeAbstractionSolution:
    """Lexicographic optimisation through SAT.

    Eq. (1) is encoded over unsigned bit-vectors; ``sum theta'`` is minimised
    first by binary search, then ``sum |Delta|`` under the fixed optimum.
    """
    if not problem.thetas:
        return TimeAbstractionSolution(1, (), (), 0, 0)

    encoding = _Encoding(problem)
    # The GCD reduction is always feasible (zero error), so its cost is a
    # sound upper bound that keeps the binary search short.
    upper_next = gcd_reduction(problem.thetas).cost_next
    best_next = _minimise(encoding, encoding.sum_scaled, upper_next)
    encoding.fix(encoding.sum_scaled, best_next)
    upper_error = min(problem.bound, sum(problem.thetas))
    best_error = _minimise(encoding, encoding.sum_errors, upper_error)
    encoding.fix(encoding.sum_errors, best_error)

    result = encoding.solver.solve()
    assert result, "fixed optima must remain satisfiable"
    solution = encoding.decode(result.model)
    solution.check(problem)
    return solution


class _Encoding:
    def __init__(self, problem: TimeAbstractionProblem) -> None:
        self.problem = problem
        self.builder = BitVecBuilder()
        width = max(theta for theta in problem.thetas).bit_length() + 1
        self.width = width
        builder = self.builder

        self.divisor = builder.variable("d", width)
        builder.require(
            builder.less_equal(builder.constant(1, width), self.divisor)
        )
        # d never needs to exceed max(theta) + 1 (all chains collapse to 0).
        builder.require(
            builder.less_equal(
                self.divisor,
                builder.constant(max(problem.thetas) + 1, width),
            )
        )

        self.scaled_vars = []
        self.error_vars = []
        self.sign_vars = []  # True = early (Delta >= 0)
        for position, (theta, sign) in enumerate(
            zip(problem.thetas, problem.signs)
        ):
            local_width = theta.bit_length() + 1
            scaled = builder.variable(f"tp{position}", local_width)
            error = builder.variable(f"delta{position}", local_width)  # |Delta|
            self.scaled_vars.append(scaled)
            self.error_vars.append(error)
            theta_const = builder.constant(theta, local_width)
            # theta' <= theta, and |Delta_i| can exceed neither theta_i nor
            # the global budget B — both bounds prune hard.
            builder.require(builder.less_equal(scaled, theta_const))
            error_cap = min(theta, problem.bound)
            builder.require(
                builder.less_equal(
                    error, builder.constant(error_cap, local_width)
                )
            )
            product = builder.multiply(scaled, self.divisor)
            early_eq = builder.equal(builder.add(product, error), theta_const)
            late_eq = builder.equal(product, builder.add(theta_const, error))
            if sign is Sign.EARLY:
                builder.require(early_eq)
                self.sign_vars.append(None)
            elif sign is Sign.LATE:
                builder.require(late_eq)
                self.sign_vars.append(None)
            else:
                selector = builder.cnf.new_var(f"early{position}")
                builder.cnf.add([-selector, early_eq])
                builder.cnf.add([selector, late_eq])
                self.sign_vars.append(selector)
            builder.require(builder.less_than(error, self.divisor))

        self.sum_scaled = builder.sum_all(self.scaled_vars)
        self.sum_errors = builder.sum_all(self.error_vars)
        # A budget beyond what the sum vector can represent is vacuous
        # (every |Delta_i| is already capped above); clamp it so the
        # constant fits instead of raising (e.g. thetas=[1], bound=4).
        budget = min(problem.bound, (1 << self.sum_errors.width) - 1)
        builder.require(
            builder.less_equal(
                self.sum_errors,
                builder.constant(budget, self.sum_errors.width),
            )
        )
        self.solver = CDCLSolver(builder.cnf)
        # Clauses created later (by bound_lit) are forwarded incrementally.
        self._clauses_seen = len(builder.cnf.clauses)

    def bound_lit(self, vector, value: int) -> int:
        builder = self.builder
        lit = builder.less_equal(
            vector, builder.constant(value, max(vector.width, value.bit_length() or 1))
        )
        # The builder appended new clauses to the CNF; forward them to the
        # already-constructed solver.
        for clause in builder.cnf.clauses[self._clauses_seen :]:
            self.solver.add_clause(clause)
        self._clauses_seen = len(builder.cnf.clauses)
        return lit

    def fix(self, vector, value: int) -> None:
        self.solver.add_clause([self.bound_lit(vector, value)])

    def decode(self, model) -> TimeAbstractionSolution:
        builder = self.builder
        divisor = builder.decode(self.divisor, model)
        scaled = tuple(builder.decode(v, model) for v in self.scaled_vars)
        magnitudes = [builder.decode(v, model) for v in self.error_vars]
        errors = []
        for theta, scaled_value, magnitude in zip(
            self.problem.thetas, scaled, magnitudes
        ):
            errors.append(theta - scaled_value * divisor)
        return TimeAbstractionSolution(
            divisor,
            scaled,
            tuple(errors),
            sum(scaled),
            sum(abs(e) for e in errors),
        )


def _minimise(encoding: _Encoding, vector, upper: int) -> int:
    """Smallest value of *vector* consistent with the constraints, found by
    binary search with solver assumptions."""
    low, high = 0, upper
    # Establish feasibility at the upper bound first.
    feasible_at_high = encoding.solver.solve([encoding.bound_lit(vector, high)])
    if not feasible_at_high:
        raise ValueError("constraint system infeasible within the given bound")
    while low < high:
        mid = (low + high) // 2
        if encoding.solver.solve([encoding.bound_lit(vector, mid)]):
            high = mid
        else:
            low = mid + 1
    return high
