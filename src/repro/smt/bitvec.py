"""Fixed-width unsigned bit-vector terms and bit-blasting to CNF.

Section IV-E of the paper reduces the time-abstraction optimisation to an
integer constraint system solved "via bit-blasting" with Yices 2.  This
module provides the equivalent substrate: bit-vector variables and
constants, ripple-carry addition, multiplication by shift-and-add,
unsigned comparisons, and equality — all encoded into the CDCL solver's
CNF.  Widths are chosen by callers to cover the value ranges of Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sat.cnf import CNF, Lit


@dataclass(frozen=True)
class BitVec:
    """A little-endian vector of CNF literals (bits[0] is the LSB)."""

    bits: tuple

    @property
    def width(self) -> int:
        return len(self.bits)


class BitVecBuilder:
    """Builds bit-vector constraints on top of a :class:`CNF` instance."""

    def __init__(self, cnf: Optional[CNF] = None) -> None:
        self.cnf = cnf if cnf is not None else CNF()
        self._true: Optional[Lit] = None
        self._names: Dict[str, BitVec] = {}

    # ----------------------------------------------------------- constants
    def true_lit(self) -> Lit:
        if self._true is None:
            self._true = self.cnf.new_var("__bv_true__")
            self.cnf.add([self._true])
        return self._true

    def false_lit(self) -> Lit:
        return -self.true_lit()

    def constant(self, value: int, width: int) -> BitVec:
        if value < 0:
            raise ValueError("bit-vectors are unsigned; negative constant")
        if value >= (1 << width):
            raise ValueError(f"constant {value} does not fit in {width} bits")
        bits = []
        for position in range(width):
            bit = (value >> position) & 1
            bits.append(self.true_lit() if bit else self.false_lit())
        return BitVec(tuple(bits))

    def variable(self, name: str, width: int) -> BitVec:
        existing = self._names.get(name)
        if existing is not None:
            if existing.width != width:
                raise ValueError(f"width mismatch for {name}")
            return existing
        bits = tuple(self.cnf.new_var(f"{name}[{i}]") for i in range(width))
        vector = BitVec(bits)
        self._names[name] = vector
        return vector

    # ---------------------------------------------------------- structure
    def extend(self, vector: BitVec, width: int) -> BitVec:
        """Zero-extend *vector* to *width* bits."""
        if width < vector.width:
            raise ValueError("cannot shrink a bit-vector with extend()")
        padding = tuple(self.false_lit() for _ in range(width - vector.width))
        return BitVec(vector.bits + padding)

    def _align(self, left: BitVec, right: BitVec) -> tuple:
        width = max(left.width, right.width)
        return self.extend(left, width), self.extend(right, width)

    # --------------------------------------------------------------- gates
    def _and(self, a: Lit, b: Lit) -> Lit:
        out = self.cnf.new_var()
        self.cnf.add_iff_and(out, [a, b])
        return out

    def _or(self, a: Lit, b: Lit) -> Lit:
        out = self.cnf.new_var()
        self.cnf.add_iff_or(out, [a, b])
        return out

    def _xor(self, a: Lit, b: Lit) -> Lit:
        out = self.cnf.new_var()
        self.cnf.add([-out, a, b])
        self.cnf.add([-out, -a, -b])
        self.cnf.add([out, -a, b])
        self.cnf.add([out, a, -b])
        return out

    def _mux(self, select: Lit, then: Lit, otherwise: Lit) -> Lit:
        out = self.cnf.new_var()
        self.cnf.add([-select, -then, out])
        self.cnf.add([-select, then, -out])
        self.cnf.add([select, -otherwise, out])
        self.cnf.add([select, otherwise, -out])
        return out

    # ---------------------------------------------------------- arithmetic
    def add(self, left: BitVec, right: BitVec, *, modular: bool = False) -> BitVec:
        """Sum of two vectors; one extra output bit unless *modular*."""
        left, right = self._align(left, right)
        carry = self.false_lit()
        bits: List[Lit] = []
        for a, b in zip(left.bits, right.bits):
            partial = self._xor(a, b)
            bits.append(self._xor(partial, carry))
            carry = self._or(self._and(a, b), self._and(partial, carry))
        if not modular:
            bits.append(carry)
        return BitVec(tuple(bits))

    def sum_all(self, vectors: Sequence[BitVec]) -> BitVec:
        if not vectors:
            return self.constant(0, 1)
        total = vectors[0]
        for vector in vectors[1:]:
            total = self.add(total, vector)
        return total

    def multiply(self, left: BitVec, right: BitVec) -> BitVec:
        """Shift-and-add product with full output width."""
        width = left.width + right.width
        accumulator = self.constant(0, width)
        for shift, select in enumerate(right.bits):
            row_bits = [self.false_lit()] * shift
            for bit in left.bits:
                row_bits.append(self._and(bit, select))
            row = self.extend(BitVec(tuple(row_bits)), width)
            accumulator = self.extend(
                self.add(accumulator, row, modular=True), width
            )
        return accumulator

    # --------------------------------------------------------- comparisons
    def equal(self, left: BitVec, right: BitVec) -> Lit:
        left, right = self._align(left, right)
        bit_eqs = []
        for a, b in zip(left.bits, right.bits):
            bit_eqs.append(-self._xor(a, b))
        out = self.cnf.new_var()
        self.cnf.add_iff_and(out, bit_eqs)
        return out

    def less_than(self, left: BitVec, right: BitVec) -> Lit:
        """Unsigned ``left < right``."""
        left, right = self._align(left, right)
        result = self.false_lit()
        for a, b in zip(left.bits, right.bits):  # LSB to MSB
            a_lt_b = self._and(-a, b)
            a_eq_b = -self._xor(a, b)
            result = self._or(a_lt_b, self._and(a_eq_b, result))
        return result

    def less_equal(self, left: BitVec, right: BitVec) -> Lit:
        return -self.less_than(right, left)

    # -------------------------------------------------------------- assert
    def require(self, lit: Lit) -> None:
        self.cnf.add([lit])

    def require_equal(self, left: BitVec, right: BitVec) -> None:
        self.require(self.equal(left, right))

    # ---------------------------------------------------------------- eval
    def decode(self, vector: BitVec, model: Dict[int, bool]) -> int:
        value = 0
        for position, lit in enumerate(vector.bits):
            bit = model[abs(lit)]
            if lit < 0:
                bit = not bit
            if bit:
                value |= 1 << position
        return value
