"""SMT-lite substrate: bit-vectors, bit-blasting, time-abstraction solver."""

from .bitvec import BitVec, BitVecBuilder
from .timeopt import (
    Sign,
    TimeAbstractionProblem,
    TimeAbstractionSolution,
    gcd_reduction,
    solve_bitblast,
    solve_reference,
)

__all__ = [
    "BitVec",
    "BitVecBuilder",
    "Sign",
    "TimeAbstractionProblem",
    "TimeAbstractionSolution",
    "gcd_reduction",
    "solve_bitblast",
    "solve_reference",
]
