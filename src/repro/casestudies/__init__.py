"""The paper's three case studies: CARA, TELEPROMISE, rescue robots."""

from .cara import (
    COMPONENT_DESCRIPTORS,
    GOLD_FORMULAS,
    MODE_SWITCHING_REQUIREMENTS,
    component_requirements,
    mode_switching_requirements,
)
from .generator import ComponentDescriptor, generate, noun_pool
from .robot import TABLE_INSTANCES, robot_requirements
from .telepromise import (
    APPLICATION_DESCRIPTORS,
    INITIALLY_FAILING_ROWS,
    PARTITION_FAULTS,
    application_requirements,
)

__all__ = [
    "APPLICATION_DESCRIPTORS",
    "COMPONENT_DESCRIPTORS",
    "ComponentDescriptor",
    "GOLD_FORMULAS",
    "INITIALLY_FAILING_ROWS",
    "MODE_SWITCHING_REQUIREMENTS",
    "PARTITION_FAULTS",
    "TABLE_INSTANCES",
    "application_requirements",
    "component_requirements",
    "generate",
    "mode_switching_requirements",
    "noun_pool",
    "robot_requirements",
]
