"""Deterministic generation of component requirement documents.

Table I reports, for thirteen CARA component specifications and five
TELEPROMISE applications, only the *scale* of each specification (number
of formulas, inputs and outputs) — the actual requirement documents are
external and not reproduced in the paper.  This module synthesises
structured-English requirement sets with exactly the published formula
counts and matching variable pools, using each component's domain
vocabulary, so the pipeline exercises the same code paths at the same
scale.  Generation is seed-free and fully deterministic: the same
descriptor always yields the same sentences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: Adjectives used for monitored (input) conditions, cycled in order.
_CONDITION_ADJECTIVES = ("available", "valid", "ready", "active", "normal")

#: Passive response verbs, cycled in order.
_RESPONSE_VERBS = (
    "triggered",
    "started",
    "updated",
    "reported",
    "issued",
    "selected",
    "activated",
    "stored",
    "displayed",
    "confirmed",
)


@dataclass(frozen=True)
class ComponentDescriptor:
    """Scale and vocabulary of one generated component specification."""

    name: str
    num_formulas: int
    input_nouns: Tuple[str, ...]  # one monitored variable each
    output_nouns: Tuple[str, ...]  # one controlled variable each
    #: (formula index -> delay in seconds) for "in t seconds" constraints.
    timed: Tuple[Tuple[int, int], ...] = ()
    #: formula indices translated with "eventually".
    eventual: Tuple[int, ...] = ()
    #: extra hand-written requirements appended verbatim (id, sentence).
    extra: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if 2 * self.num_formulas < len(self.input_nouns):
            raise ValueError(
                f"{self.name}: at most two conditions per formula supported"
            )
        if 2 * self.num_formulas < len(self.output_nouns):
            raise ValueError(
                f"{self.name}: at most two responses per formula supported"
            )


def generate(descriptor: ComponentDescriptor) -> List[Tuple[str, str]]:
    """Produce ``(identifier, sentence)`` requirements for *descriptor*.

    Every input noun appears in at least one condition and every output
    noun in at least one response; extra formulas cycle through two-input
    conditions so the specification stays variable-connected like real
    requirement documents.
    """
    total = descriptor.num_formulas - len(descriptor.extra)
    inputs = descriptor.input_nouns
    outputs = descriptor.output_nouns
    timed = dict(descriptor.timed)
    eventual = set(descriptor.eventual)
    def adjective_for(noun_index: int) -> str:
        # One fixed adjective per noun, so each monitored noun contributes
        # exactly one proposition and the input count matches Table I.
        return _CONDITION_ADJECTIVES[noun_index % len(_CONDITION_ADJECTIVES)]

    def verb_for(noun_index: int) -> str:
        return _RESPONSE_VERBS[noun_index % len(_RESPONSE_VERBS)]

    requirements: List[Tuple[str, str]] = []
    for index in range(total):
        input_index = index % len(inputs)
        output_index = index % len(outputs)
        input_noun = inputs[input_index]
        output_noun = outputs[output_index]
        condition = f"the {input_noun.replace('_', ' ')} is {adjective_for(input_index)}"
        second_index: Optional[int] = None
        spare_inputs = len(inputs) - total
        if index < spare_inputs:
            # More inputs than formulas (Table I row 3.1): cover the
            # remaining inputs through two-input conditions.
            second_index = total + index
        elif index >= max(len(inputs), len(outputs)):
            # Later formulas take two-input conditions for realism.
            second_index = (input_index + 1) % len(inputs)
        if second_index is not None and inputs[second_index] != input_noun:
            second = inputs[second_index]
            condition += (
                f", and the {second.replace('_', ' ')} is "
                f"{adjective_for(second_index)}"
            )
        response = f"the {output_noun.replace('_', ' ')} is {verb_for(output_index)}"
        # When a specification has more outputs than formulas (Table I row
        # 2.2.6), early formulas carry a two-output conjunction response.
        spare = len(outputs) - total
        if index < spare:
            partner_index = total + index
            partner = outputs[partner_index]
            response += (
                f" and the {partner.replace('_', ' ')} is "
                f"{verb_for(partner_index)}"
            )
        if index in eventual:
            response = f"eventually {response}"
        if index in timed:
            response += f" in {timed[index]} seconds"
        sentence = f"If {condition}, {response}."
        requirements.append((f"{descriptor.name}-{index + 1:02d}", sentence))
    for identifier, sentence in descriptor.extra:
        requirements.append((identifier, sentence))
    return requirements


def noun_pool(prefix: str, count: int, themes: Sequence[str]) -> Tuple[str, ...]:
    """``count`` domain nouns: the given themes, then numbered fallbacks."""
    pool = list(themes[:count])
    index = 1
    while len(pool) < count:
        pool.append(f"{prefix} {index}")
        index += 1
    return tuple(pool[:count])
