"""The rescue-robot case study (Table I, bottom block).

"The responsibility of the robots in this scenario is to look for the
injured people and take them to a medic who is in some room.  Different
numbers of rooms and robots have been considered here, with the constraint
that two robots cannot be in the same room at the same time."

:func:`robot_requirements` generates the scenario parametrically; the
three Table I instances are (1 robot, 4 rooms) — 9 formulas, 2 inputs,
5 outputs —, (1 robot, 9 rooms) — 14/2/10 — and (2 robots, 5 rooms) —
25/2/11.  Robot positions are modelled with ``in room j`` complements
("robot 1 is in room 3" -> ``in_room_3_robot_1``), the two inputs are the
victim-detected and medic-ready signals, and mutual exclusion appears as
implications between robot positions.  The single-robot instances fall
into the obligation fragment; the two-robot instance does not (the
exclusion constraints conflict with joint goal discharge), forcing the
exact safety-game engine — which is why it is the slowest robot row, as in
the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def robot_requirements(robots: int, rooms: int) -> List[Tuple[str, str]]:
    """The rescue scenario for *robots* robots and *rooms* rooms."""
    if robots < 1 or rooms < 2:
        raise ValueError("need at least one robot and two rooms")
    requirements: List[Tuple[str, str]] = []
    # Search goals: every room must eventually be visited after a victim
    # is detected.
    for robot in range(1, robots + 1):
        for room in range(1, rooms + 1):
            requirements.append(
                (
                    f"visit-r{robot}-room{room}",
                    f"If a victim is detected, eventually robot {robot} is in room {room}.",
                )
            )
    # Mutual exclusion between robots, one requirement per room.
    if robots >= 2:
        for room in range(1, rooms + 1):
            requirements.append(
                (
                    f"mutex-room{room}",
                    f"If robot 1 is in room {room}, robot 2 is not in room {room}.",
                )
            )
    # Delivery: the victim is carried to the medic's room (room 1).
    requirements.append(
        ("carry", "If a victim is detected, eventually the victim is carried.")
    )
    for robot in range(1, min(robots, 2) + 1):
        requirements.append(
            (
                f"medic-r{robot}",
                f"If the medic is ready, eventually robot {robot} is in room {robot}.",
            )
        )
    # Patrol chains: progress through neighbouring rooms.
    chains = _chain_budget(robots, rooms)
    count = 0
    for robot in range(1, robots + 1):
        for room in range(1, rooms):
            if count >= chains:
                break
            requirements.append(
                (
                    f"chain-r{robot}-room{room}",
                    f"If robot {robot} is in room {room}, eventually robot {robot} is in room {room + 1}.",
                )
            )
            count += 1
    return requirements


def _chain_budget(robots: int, rooms: int) -> int:
    """Number of patrol-chain requirements matching the Table I counts."""
    if robots == 1:
        return 3  # 4 rooms -> 9 formulas; 9 rooms -> 14 formulas
    return 7  # 2 robots, 5 rooms -> 25 formulas


#: The three Table I instances: row id -> (robots, rooms).
TABLE_INSTANCES: Dict[str, Tuple[int, int]] = {
    "1": (1, 4),
    "2": (1, 9),
    "3": (2, 5),
}
