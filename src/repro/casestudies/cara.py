"""The CARA infusion-pump case study (Section III and the appendix).

``MODE_SWITCHING_REQUIREMENTS`` is the paper's appendix list verbatim —
the thirty requirements about working-mode switching checked in Table I
row 0 — with three typographical fixes recorded in ``TYPO_FIXES``
("termiante"/"terminating" -> "terminate", "model" -> "mode"), since the
misspellings would otherwise create spuriously distinct propositions.

``GOLD_FORMULAS`` is the appendix's hand-listed LTL, transliterated into
this library's proposition naming (see EXPERIMENTS.md for the mapping;
the differences are purely cosmetic, e.g. the paper abbreviates
``available_terminate_auto_control_button`` to
``terminate_auto_control_button``).  The test suite checks the translator
against these formulas.

The thirteen component specifications of Table I (Pump Monitor, the Blood
Pressure Monitor sub-components and the Polling Algorithms) are generated
at the published scales by :mod:`repro.casestudies.generator`, because the
underlying requirement documents are external to the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .generator import ComponentDescriptor, generate, noun_pool

TYPO_FIXES: Tuple[Tuple[str, str], ...] = (
    ("termiante", "terminate"),  # Req-48.1
    ("terminating auto control button", "terminate auto control button"),  # Req-48.6
    ("auto control model", "auto control mode"),  # Req-54
)

#: Appendix requirements, mode switching (Table I, CARA row 0).
MODE_SWITCHING_REQUIREMENTS: Tuple[Tuple[str, str], ...] = (
    ("Req-01", "The CARA will be operational whenever the LSTAT is powered on."),
    ("Req-07", "If an occlusion is detected, and auto control mode is running, auto control mode will be terminated."),
    ("Req-08", "If Air Ok signal remains low, auto control mode is terminated in 3 seconds."),
    ("Req-13.1", "If arterial line and pulse wave are corroborated, and cuff is available, next arterial line is selected."),
    ("Req-13.2", "If pulse wave is corroborated, and cuff is available, and arterial line is not corroborated, next pulse wave is selected."),
    ("Req-13.3", "If arterial line is not corroborated, and pulse wave is not corroborated, and cuff is available, then cuff is selected."),
    ("Req-16", "If a pump is plugged in, and an infusate is ready, and the occlusion line is clear, auto control mode can be started."),
    ("Req-17.1", "When auto control mode is running, eventually the cuff will be inflated."),
    ("Req-17.2", "If start auto control button is pressed, and cuff is not available, an alarm is issued and override selection is provided."),
    ("Req-17.3", "If alarm reset button is pressed, the alarm is disabled."),
    ("Req-17.4", "If override selection is provided, if override yes is pressed, and arterial line is not corroborated, next arterial line is selected."),
    ("Req-17.5", "If override selection is provided, if override yes is pressed, and arterial line is corroborated, and pulse wave is not corroborated, next pulse wave is selected."),
    ("Req-17.6", "If override selection is provided, if override no is pressed, next manual mode is started."),
    ("Req-17.7", "If cuff and arterial line and pulse wave are not available, next manual mode is started."),
    ("Req-20", "If manual mode is running and start auto control button is pressed, next corroboration is triggered."),
    ("Req-28", "If a valid blood pressure is unavailable in 180 seconds, manual mode should be triggered."),
    ("Req-32.1", "If pulse wave or arterial line is available, and cuff is selected, corroboration is triggered."),
    ("Req-32.2", "If pulse wave is selected, and arterial line is available, corroboration is triggered."),
    ("Req-34", "When auto control mode is running, terminate auto control button should be available."),
    ("Req-42", "When auto control mode is running, and the arterial line or pulse wave or cuff is lost, an alarm should sound in 60 seconds."),
    ("Req-44", "If pulse wave and arterial line are unavailable, and cuff is selected, and blood pressure is not valid, next manual mode is started."),
    ("Req-48.1", "Whenever terminate auto control button is selected, a confirmation button is available."),
    ("Req-48.2", "If a confirmation button is available, and confirmation yes is pressed, manual mode is started."),
    ("Req-48.3", "If a confirmation button is available, and confirmation no is pressed, auto control mode is running."),
    ("Req-48.4", "If a confirmation button is available, and confirmation yes is pressed, next confirmation yes is disabled."),
    ("Req-48.5", "If a confirmation button is available, and confirmation no is pressed, next confirmation no is disabled."),
    ("Req-48.6", "If a confirmation button is available, and terminate auto control button is pressed, next terminate auto control button is disabled."),
    ("Req-49", "When a start auto control button is enabled, the start auto control button is enabled until it is pressed."),
    ("Req-54", "If auto control mode is running, and impedance reading is unavailable, next auto control mode is terminated."),
    ("Req-54b", "If auto control mode is running, and occlusion line is not clear, next auto control mode is terminated."),
)

#: Appendix gold LTL in this library's proposition naming; the paper's
#: tool drops the "next" marker, so these correspond to
#: ``TranslationOptions(next_as_x=False)`` and the optimal time
#: abstraction with Theta={3,60,180}, B=5 (divisor 60).
GOLD_FORMULAS: Dict[str, str] = {
    "Req-01": "G (power_on_lstat -> F operational_cara)",
    "Req-07": "G (detect_occlusion && run_auto_control_mode -> F terminate_auto_control_mode)",
    "Req-08": "G (low_air_ok_signal -> terminate_auto_control_mode)",
    "Req-13.1": "G (corroborate_arterial_line && corroborate_pulse_wave && cuff -> select_arterial_line)",
    "Req-13.2": "G (corroborate_pulse_wave && cuff && !corroborate_arterial_line -> select_pulse_wave)",
    "Req-13.3": "G (!corroborate_arterial_line && !corroborate_pulse_wave && cuff -> select_cuff)",
    "Req-16": "G (plug_in_pump && ready_infusate && clear_occlusion_line -> start_auto_control_mode)",
    "Req-17.1": "G (run_auto_control_mode -> F inflate_cuff)",
    "Req-17.2": "G (press_start_auto_control_button && !cuff -> issue_alarm && provide_override_selection)",
    "Req-17.3": "G (press_alarm_reset_button -> !enabled_alarm)",
    "Req-17.4": "G (provide_override_selection -> G (press_override_yes && !corroborate_arterial_line -> select_arterial_line))",
    "Req-17.5": "G (provide_override_selection -> G (press_override_yes && corroborate_arterial_line && !corroborate_pulse_wave -> select_pulse_wave))",
    "Req-17.6": "G (provide_override_selection -> G (press_override_no -> start_manual_mode))",
    "Req-17.7": "G (!cuff && !arterial_line && !pulse_wave -> start_manual_mode)",
    "Req-20": "G (run_manual_mode && press_start_auto_control_button -> trigger_corroboration)",
    "Req-28": "G (X X X !available_blood_pressure -> trigger_manual_mode)",
    "Req-32.1": "G ((pulse_wave || arterial_line) && select_cuff -> trigger_corroboration)",
    "Req-32.2": "G (select_pulse_wave && arterial_line -> trigger_corroboration)",
    "Req-34": "G (run_auto_control_mode -> available_terminate_auto_control_button)",
    "Req-42": "G (run_auto_control_mode && (!arterial_line || !pulse_wave || !cuff) -> X sound_alarm)",
    "Req-44": "G (!pulse_wave && !arterial_line && select_cuff && !valid_blood_pressure -> start_manual_mode)",
    "Req-48.1": "G (select_terminate_auto_control_button -> available_confirmation_button)",
    "Req-48.2": "G (available_confirmation_button && press_confirmation_yes -> start_manual_mode)",
    "Req-48.3": "G (available_confirmation_button && press_confirmation_no -> run_auto_control_mode)",
    "Req-48.4": "G (available_confirmation_button && press_confirmation_yes -> !enabled_confirmation_yes)",
    "Req-48.5": "G (available_confirmation_button && press_confirmation_no -> !enabled_confirmation_no)",
    "Req-48.6": "G (available_confirmation_button && press_terminate_auto_control_button -> !enabled_terminate_auto_control_button)",
    "Req-49": "G (enabled_start_auto_control_button -> (!press_start_auto_control_button -> (enabled_start_auto_control_button W press_start_auto_control_button)))",
    "Req-54": "G (run_auto_control_mode && !available_impedance_reading -> terminate_auto_control_mode)",
    "Req-54b": "G (run_auto_control_mode && !clear_occlusion_line -> terminate_auto_control_mode)",
}


def mode_switching_requirements() -> List[Tuple[str, str]]:
    """The Table I row 0 specification (30 requirements)."""
    return list(MODE_SWITCHING_REQUIREMENTS)


#: Table I component rows: (row id, descriptor).  Formula/variable counts
#: match the published scales exactly; see the module docstring.
COMPONENT_DESCRIPTORS: Tuple[Tuple[str, ComponentDescriptor], ...] = (
    (
        "1",
        ComponentDescriptor(
            name="pump-monitor",
            num_formulas=20,
            input_nouns=noun_pool("pump line", 9, (
                "pump power", "back battery", "air line", "occlusion sensor",
                "infusate level", "pump rate", "fluid source", "air ok signal",
                "pump switch",
            )),
            output_nouns=noun_pool("pump action", 14, (
                "pump alarm", "rate display", "power report", "battery alarm",
                "occlusion report", "rate limit", "monitor log", "pump reset",
                "status page", "flow control", "air purge", "line check",
                "maintenance flag", "pump record",
            )),
            timed=((12, 4),),
            eventual=(7,),
        ),
    ),
    (
        "2.1.1",
        ComponentDescriptor(
            name="bpm-cuff-detector",
            num_formulas=14,
            input_nouns=noun_pool("cuff line", 13, (
                "cuff sensor", "cuff pressure", "cuff wrap", "pump state",
                "patient contact", "cuff valve", "air supply", "cuff fit",
                "wrap sensor", "pressure source", "cuff latch", "hose link",
                "cuff signal",
            )),
            output_nouns=noun_pool("cuff action", 12, (
                "cuff reading", "cuff alarm", "cuff record", "inflate command",
                "deflate command", "cuff status", "cuff display", "retry timer",
                "cuff report", "calibration flag", "cuff log", "pressure page",
            )),
        ),
    ),
    (
        "2.1.2",
        ComponentDescriptor(
            name="bpm-al-detector",
            num_formulas=15,
            input_nouns=noun_pool("al line", 11, (
                "arterial sensor", "line pressure", "catheter state",
                "transducer signal", "line flush", "al connector",
                "waveform source", "line clamp", "zero reference",
                "sensor cable", "al monitor",
            )),
            output_nouns=noun_pool("al action", 14, (
                "al reading", "al alarm", "al record", "line status",
                "waveform display", "al report", "signal filter", "al log",
                "line check", "zero command", "al page", "clamp warning",
                "al flag", "line display",
            )),
            eventual=(9,),
        ),
    ),
    (
        "2.1.3",
        ComponentDescriptor(
            name="bpm-pulse-wave-detector",
            num_formulas=14,
            input_nouns=noun_pool("pw line", 9, (
                "pulse sensor", "wave signal", "probe contact",
                "signal strength", "probe cable", "wave source",
                "sensor clip", "pulse amplitude", "probe state",
            )),
            output_nouns=noun_pool("pw action", 12, (
                "pulse reading", "wave alarm", "pulse record", "wave display",
                "probe warning", "pulse report", "signal log", "wave status",
                "pulse page", "probe check", "wave flag", "pulse filter",
            )),
        ),
    ),
    (
        "2.2.1",
        ComponentDescriptor(
            name="bpm-initial-auto-control",
            num_formulas=16,
            input_nouns=noun_pool("init line", 14, (
                "start request", "pump status", "source list", "cuff source",
                "al source", "pw source", "initial pressure", "operator ack",
                "mode switch", "safety check", "line scan", "power state",
                "sensor suite", "config record",
            )),
            output_nouns=noun_pool("init action", 15, (
                "init reading", "mode display", "source select", "init alarm",
                "control handoff", "init record", "scan report", "mode log",
                "start confirm", "source page", "init flag", "control timer",
                "handoff check", "init status", "mode banner",
            )),
        ),
    ),
    (
        "2.2.2",
        ComponentDescriptor(
            name="bpm-first-corroboration",
            num_formulas=19,
            input_nouns=noun_pool("corr line", 11, (
                "cuff value", "al value", "pw value", "tolerance band",
                "sample window", "corr request", "source pair", "value age",
                "retry count", "operator view", "corr input",
            )),
            output_nouns=noun_pool("corr action", 16, (
                "corr verdict", "corr alarm", "corr record", "pair display",
                "retry command", "corr report", "mismatch flag", "corr log",
                "value page", "band check", "corr status", "source confirm",
                "corr timer", "verdict banner", "pair log", "corr page",
            )),
            eventual=(5, 11),
        ),
    ),
    (
        "2.2.3",
        ComponentDescriptor(
            name="bpm-valid-ctrl-blood-pressure",
            num_formulas=13,
            input_nouns=noun_pool("vbp line", 11, (
                "bp value", "bp age", "source tag", "validity window",
                "control request", "bp trend", "sample rate", "bp source",
                "filter state", "bp bound", "bp input",
            )),
            output_nouns=noun_pool("vbp action", 10, (
                "valid flag", "bp record", "control value", "bp alarm",
                "trend display", "bp report", "bound check", "bp log",
                "value banner", "bp page",
            )),
        ),
    ),
    (
        "2.2.4",
        ComponentDescriptor(
            name="bpm-cuff-source-handler",
            num_formulas=11,
            input_nouns=noun_pool("csh line", 9, (
                "cuff request", "cuff supply", "inflation state",
                "cuff interval", "handler mode", "cuff queue", "cuff age",
                "venous return", "cuff slot",
            )),
            output_nouns=noun_pool("csh action", 10, (
                "cuff command", "interval timer", "cuff release", "cuff note",
                "handler alarm", "cuff slot record", "queue display",
                "handler log", "cuff banner", "handler page",
            )),
        ),
    ),
    (
        "2.2.5",
        ComponentDescriptor(
            name="bpm-arterial-line-blood-pressure",
            num_formulas=16,
            input_nouns=noun_pool("albp line", 9, (
                "al sample", "al window", "al trend", "al request",
                "sample age", "al quality", "beat detect", "al filter",
                "al slot",
            )),
            output_nouns=noun_pool("albp action", 13, (
                "al value out", "al flag", "al trend display", "al note",
                "al sample record", "al quality report", "al beat log",
                "al alarm out", "al banner", "al audit", "al slot page",
                "al check", "al value page",
            )),
            timed=((10, 6),),
        ),
    ),
    (
        "2.2.6",
        ComponentDescriptor(
            name="bpm-arterial-line-corroboration",
            num_formulas=12,
            input_nouns=noun_pool("alc line", 8, (
                "alc sample", "alc reference", "alc band", "alc request",
                "alc age", "alc pair", "alc retry", "alc view",
            )),
            output_nouns=noun_pool("alc action", 13, (
                "alc verdict", "alc alarm", "alc record", "alc display",
                "alc retry command", "alc report", "alc flag", "alc log",
                "alc page", "alc check", "alc status", "alc confirm",
                "alc timer",
            )),
        ),
    ),
    (
        "2.2.7",
        ComponentDescriptor(
            name="bpm-pulse-wave-handler",
            num_formulas=20,
            input_nouns=noun_pool("pwh line", 10, (
                "pwh sample", "pwh window", "pwh trend", "pwh request",
                "pwh age", "pwh quality", "pwh beat", "pwh filter",
                "pwh slot", "pwh view",
            )),
            output_nouns=noun_pool("pwh action", 21, (
                "pwh value out", "pwh flag", "pwh trend display", "pwh note",
                "pwh sample record", "pwh quality report", "pwh beat log",
                "pwh alarm out", "pwh banner", "pwh audit", "pwh slot page",
                "pwh check", "pwh value page", "pwh confirm", "pwh timer",
                "pwh status", "pwh retry", "pwh release", "pwh queue",
                "pwh interval", "pwh command",
            )),
            eventual=(3,),
        ),
    ),
    (
        "3.1",
        ComponentDescriptor(
            name="pa-model-ctrl-algorithm",
            num_formulas=9,
            input_nouns=noun_pool("mca line", 15, (
                "model state", "target pressure", "observed pressure",
                "rate bound", "model error", "control tick", "gain table",
                "model input", "model clock", "patient weight",
                "resistance estimate", "flow estimate", "drift gauge",
                "sensor bias", "loop margin",
            )),
            output_nouns=noun_pool("mca action", 11, (
                "rate command", "model record", "error report", "gain select",
                "control log", "model page", "bound alarm", "model banner",
                "model audit", "loop report", "drift flag",
            )),
            extra=(
                ("pa-mca-ex1", "If the model clock is active, the rate command is triggered in 2 seconds."),
            ),
        ),
    ),
    (
        "3.2",
        ComponentDescriptor(
            name="pa-polling-algorithm",
            num_formulas=56,
            input_nouns=noun_pool("poll line", 12, (
                "poll tick", "poll source", "poll queue", "source health",
                "poll window", "poll retry", "poll priority", "poll clock",
                "poll budget", "poll slot", "poll backlog", "poll input",
            )),
            output_nouns=noun_pool("poll action", 20, (
                "poll command", "poll record", "poll report", "queue display",
                "retry command", "poll alarm", "priority select", "poll log",
                "slot page", "budget check", "poll status", "source confirm",
                "poll timer", "poll banner", "backlog page", "poll audit",
                "health flag", "window select", "poll note", "poll release",
            )),
            timed=((20, 8), (33, 12)),
            eventual=(9, 27, 45),
        ),
    ),
)


def component_requirements() -> Dict[str, List[Tuple[str, str]]]:
    """Requirement sets for every Table I CARA component row."""
    return {
        row: generate(descriptor) for row, descriptor in COMPONENT_DESCRIPTORS
    }
