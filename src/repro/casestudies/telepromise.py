"""The TELEPROMISE case study (Table I, middle block).

The functional specification of the TELEPROMISE demonstrator covered five
generic applications (Shopping, Article processing, On-line reservation,
Information, Local bulletin board); the document itself is no longer
available (the paper's URL is dead), so the five requirement sets are
generated at the published Table I scales.

The paper reports that "G4LTL failed to generate controllers for the last
two specifications.  The failure was caused by the classification of input
and output variables.  After locating the problem and modifying the
input/output variable partition, the specifications are consistent."  The
*Information* and *Local bulletin board* sets therefore embed a
requirement pair whose status variable the Section IV-F heuristic
classifies as an input (it only ever appears in conditions), although it
must be system-controlled: treated adversarially the pair is
unrealizable, and SpecCC's partition-repair step (Section V-B) moves the
variable to the outputs and re-checks successfully — reproducing the
published failure/repair behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .generator import ComponentDescriptor, generate, noun_pool

#: The requirement pairs that reproduce the published partition failures.
#: (application, status variable the heuristic misclassifies)
PARTITION_FAULTS: Tuple[Tuple[str, str], ...] = (
    ("information", "active_session"),
    ("local-bulletin-board", "active_guest_mode"),
)

APPLICATION_DESCRIPTORS: Tuple[Tuple[str, ComponentDescriptor], ...] = (
    (
        "1",
        ComponentDescriptor(
            name="shopping",
            num_formulas=29,
            input_nouns=noun_pool("shop line", 11, (
                "customer card", "basket total", "item stock", "payment gateway",
                "delivery slot", "discount code", "customer account",
                "checkout request", "cancel request", "catalog service",
                "session token",
            )),
            output_nouns=noun_pool("shop action", 24, (
                "order record", "payment receipt", "stock reservation",
                "delivery booking", "order confirmation", "invoice page",
                "basket display", "discount note", "cancel receipt",
                "refund order", "catalog page", "pick list", "dispatch note",
                "customer letter", "audit entry", "stock alert",
                "payment retry", "order banner", "session log",
                "checkout page", "warehouse ticket", "courier request",
                "vat record", "loyalty credit",
            )),
            timed=((17, 5),),
            eventual=(6, 20),
        ),
    ),
    (
        "2",
        ComponentDescriptor(
            name="article-processing",
            num_formulas=17,
            input_nouns=noun_pool("article line", 3, (
                "manuscript upload", "review verdict", "editor decision",
            )),
            output_nouns=noun_pool("article action", 13, (
                "submission record", "review request", "author letter",
                "revision ticket", "acceptance note", "rejection note",
                "typeset job", "proof page", "publication entry",
                "issue listing", "archive copy", "doi record", "editor log",
            )),
            eventual=(8,),
        ),
    ),
    (
        "3",
        ComponentDescriptor(
            name="online-reservation",
            num_formulas=6,
            input_nouns=noun_pool("reservation line", 3, (
                "seat request", "cancel notice", "payment token",
            )),
            output_nouns=noun_pool("reservation action", 4, (
                "seat hold", "booking record", "ticket issue", "refund note",
            )),
        ),
    ),
    (
        "4",
        ComponentDescriptor(
            name="information",
            num_formulas=15,
            input_nouns=noun_pool("info line", 6, (
                "search query", "topic index", "news feed", "user profile",
                "archive request", "category filter",
            )),
            output_nouns=noun_pool("info action", 13, (
                "search listing", "topic page", "news digest", "profile page",
                "archive view", "category menu", "usage record",
                "suggestion box", "feedback form", "help page",
                "subscription note", "info banner", "index refresh",
            )),
            extra=(
                ("information-14", "If the session is active, the result page is displayed."),
                ("information-15", "If the maintenance notice is posted, the result page is not displayed."),
            ),
        ),
    ),
    (
        "5",
        ComponentDescriptor(
            name="local-bulletin-board",
            num_formulas=17,
            input_nouns=noun_pool("board line", 5, (
                "post submission", "member login", "report notice",
                "sticky request", "search box",
            )),
            output_nouns=noun_pool("board action", 15, (
                "post record", "thread listing", "member page", "report ticket",
                "sticky banner", "search result", "moderation log",
                "digest mail", "archive thread", "welcome note",
                "board header", "post counter", "rule page", "tag menu",
                "draft store",
            )),
            extra=(
                ("board-16", "If the moderation queue is busy, the board page is updated."),
                ("board-17", "If the guest mode is active, the board page is not updated."),
            ),
        ),
    ),
)

#: Table I name per application row.
ROW_NAMES: Dict[str, str] = {
    "1": "Shopping",
    "2": "Article processing",
    "3": "On-line reservation",
    "4": "Information",
    "5": "Local bulletin board",
}

#: Rows the paper reports as initially failing (partition fault).
INITIALLY_FAILING_ROWS: Tuple[str, ...] = ("4", "5")


def application_requirements() -> Dict[str, List[Tuple[str, str]]]:
    """Requirement sets for the five TELEPROMISE applications."""
    return {
        row: generate(descriptor)
        for row, descriptor in APPLICATION_DESCRIPTORS
    }
