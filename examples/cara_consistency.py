"""CARA case study: translate the paper's 30 mode-switching requirements
and check their consistency (Table I, row 0).

Run:  python examples/cara_consistency.py
"""

from repro import SpecCC, SpecCCConfig, TranslationOptions
from repro.casestudies import mode_switching_requirements


def main() -> None:
    # next_as_x=False reproduces the paper's own translation, which drops
    # the "next" marker (see the appendix gold formulas).
    config = SpecCCConfig(translation=TranslationOptions(next_as_x=False))
    tool = SpecCC(config)
    requirements = mode_switching_requirements()

    report = tool.check(requirements)
    translation = report.translation

    print("=== Section IV-D: antonym pairs found by Algorithm 1 ===")
    for subject, positive, negative in translation.analysis.antonym_pairs():
        print(f"  {subject}: {positive} / {negative}")

    print("\n=== Section IV-E: time abstraction ===")
    solution = translation.abstraction.solution
    print(f"  chain lengths: {translation.abstraction.thetas}")
    print(f"  divisor d = {solution.divisor}, theta' = {solution.scaled}, "
          f"Delta = {solution.errors}")

    print("\n=== translated formulas ===")
    for requirement in translation.requirements:
        print(f"  [{requirement.identifier}] {requirement.formula}")

    print("\n=== consistency (Table I row 0: consistent) ===")
    print(report.summary())


if __name__ == "__main__":
    main()
