"""Section IV-E walkthrough: discrete time, GCD reduction, and the
arrival-error optimisation solved by bit-blasting.

Run:  python examples/time_abstraction_demo.py
"""

from repro.logic import to_str
from repro.smt import (
    Sign,
    TimeAbstractionProblem,
    gcd_reduction,
    solve_bitblast,
    solve_reference,
)
from repro.translate import AbstractionMethod, TranslationOptions, Translator

REQUIREMENTS = [
    ("Req-08", "If Air Ok signal remains low, auto control mode is terminated in 3 seconds."),
    ("Req-28", "If a valid blood pressure is unavailable in 180 seconds, manual mode should be triggered."),
    ("Req-42", "When auto control mode is running, and the arterial line or pulse wave or cuff is lost, an alarm should sound in 60 seconds."),
]


def show(title: str, method: AbstractionMethod) -> None:
    translator = Translator(
        options=TranslationOptions(next_as_x=False),
        abstraction=method,
        error_bound=5,
    )
    spec = translator.translate(REQUIREMENTS)
    print(f"--- {title} ---")
    for requirement in spec.requirements:
        print(f"  [{requirement.identifier}] {to_str(requirement.formula)}")
    solution = spec.abstraction.solution
    print(f"  divisor={solution.divisor}, sum theta'={solution.cost_next}, "
          f"sum |Delta|={solution.cost_error}\n")


def main() -> None:
    show("no abstraction (one X per second)", AbstractionMethod.NONE)
    show("GCD reduction (paper: 'quite conservative')", AbstractionMethod.GCD)
    show("optimal abstraction, B=5 (paper's running example)", AbstractionMethod.OPTIMAL)

    print("--- the optimisation problem itself (Eq. 1-2) ---")
    problem = TimeAbstractionProblem.of([3, 180, 60], 5)
    print(f"  GCD      : {gcd_reduction([3, 180, 60])}")
    print(f"  reference: {solve_reference(problem)}")
    print(f"  bitblast : {solve_bitblast(problem)}")

    print("\n--- late arrivals allowed instead ---")
    late = TimeAbstractionProblem.of(
        [3, 180, 60], 5, signs=[Sign.LATE, Sign.LATE, Sign.LATE]
    )
    print(f"  reference: {solve_reference(late)}")


if __name__ == "__main__":
    main()
