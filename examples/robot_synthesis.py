"""Rescue-robot case study: generate the scenario, check consistency, and
synthesize an explicit controller for a small instance.

Run:  python examples/robot_synthesis.py
"""

from repro import SpecCC, SpecCCConfig, TranslationOptions
from repro.casestudies import robot_requirements
from repro.logic import conj
from repro.synthesis import satisfies_specification, solve_safety_game
from repro.translate import Translator


def main() -> None:
    config = SpecCCConfig(translation=TranslationOptions(next_as_x=False))
    tool = SpecCC(config)

    print("=== Table I robot instances ===")
    for robots, rooms in [(1, 4), (1, 9), (2, 5)]:
        report = tool.check(robot_requirements(robots, rooms))
        print(f"  {robots} robot(s), {rooms} rooms: {report.verdict.value} "
              f"({len(report.translation.requirements)} formulas, "
              f"{report.translation.num_inputs} in, "
              f"{report.translation.num_outputs} out)")

    # Explicit controller synthesis on a tiny instance, with independent
    # verification of the result.
    print("\n=== explicit controller for 1 robot, 2 rooms ===")
    translator = Translator(options=TranslationOptions(next_as_x=False))
    spec = translator.translate(robot_requirements(1, 2))
    phi = conj(spec.formulas)
    outcome = solve_safety_game(
        phi,
        sorted(spec.partition.inputs),
        sorted(spec.partition.outputs),
        bound=2,
    )
    assert outcome.realizable
    print(outcome.machine.describe())
    assert satisfies_specification(outcome.machine, phi)
    print("controller independently verified against the specification")


if __name__ == "__main__":
    main()
