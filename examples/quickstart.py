"""Quickstart: check a small natural-language specification with SpecCC.

Run:  python examples/quickstart.py
"""

from repro import SpecCC
from repro.nlp import parse_sentence, render_sentence

SPECIFICATION = """
# An elevator door controller, in structured English.
When the call button is pressed, eventually the door is opened.
If the obstacle sensor is active, the door is not opened.
If the door is opened, next the door lamp is activated.
"""


def main() -> None:
    tool = SpecCC()
    report = tool.check_document(SPECIFICATION)

    print("=== syntax tree of the first requirement (cf. paper Figure 2) ===")
    print(render_sentence(parse_sentence(
        "When the call button is pressed, eventually the door is opened."
    )))

    print("\n=== translated LTL ===")
    for requirement in report.translation.requirements:
        print(f"  [{requirement.identifier}] {requirement.formula}")

    print("\n=== consistency report ===")
    print(report.summary())

    if report.controllers:
        print("\n=== synthesized controller(s) ===")
        for machine in report.controllers:
            print(machine.describe())


if __name__ == "__main__":
    main()
