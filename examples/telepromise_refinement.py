"""TELEPROMISE case study: the published partition-failure / repair loop.

Rows 4 and 5 of Table I initially fail realizability because the
Section IV-F heuristic classifies a system-controlled status variable as
an input; SpecCC's refinement (Section V-B) relocates it and re-checks.

Run:  python examples/telepromise_refinement.py
"""

from repro import SpecCC, SpecCCConfig, TranslationOptions
from repro.casestudies import application_requirements
from repro.casestudies.telepromise import INITIALLY_FAILING_ROWS, ROW_NAMES


def main() -> None:
    config = SpecCCConfig(translation=TranslationOptions(next_as_x=False))
    tool = SpecCC(config)

    for row, requirements in application_requirements().items():
        report = tool.check(requirements)
        name = ROW_NAMES[row]
        print(f"=== {name} ===")
        print(f"  formulas: {len(report.translation.requirements)}, "
              f"inputs: {report.translation.num_inputs}, "
              f"outputs: {report.translation.num_outputs}")
        print(f"  verdict: {report.verdict.value}")
        if report.repair_attempts:
            moved = sorted(
                report.translation.partition.inputs - report.partition.inputs
            )
            print(f"  partition repaired ({report.repair_attempts} step(s)): "
                  f"moved {', '.join(moved)} to the outputs")
            assert row in INITIALLY_FAILING_ROWS
        else:
            print("  heuristic partition accepted unchanged")
        print()


if __name__ == "__main__":
    main()
