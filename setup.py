"""Shim so legacy installs work where PEP 517 tooling is unavailable.

All metadata lives in ``pyproject.toml``.  Prefer ``pip install -e .``;
``python setup.py develop`` is the fallback for offline environments that
lack the ``wheel`` package (editable wheels cannot be built without it).
"""

from setuptools import setup

setup()
