"""Crash-recovery soak: journaled TCP gateway killed mid-stream, twice.

CI's end-to-end exercise of durable sessions exactly as deployed: a
``python -m repro serve --tcp ... --journal DIR`` gateway process, a TCP
client editing a durable session with monotone rids, and the standard
``REPRO_FAULTS`` machinery killing the gateway at scheduled journal
appends — once *after* a record is durable but before its ack
(``journal_crash``: the lost-acknowledgement window rid deduplication
exists for), and once with only half a frame on disk (``journal_torn``:
the tail the CRC framing must truncate, never replay).  After each kill
the gateway is restarted on the same journal directory and the client
re-``attach``\\ es:

* reports must come back **byte-identical** to an in-process sequential
  reference driven through the same edit history,
* the retried rid must be applied **exactly once** (duplicate-ack after
  the crash, fresh apply after the torn write), and
* the ``stats`` op must show the **exact** journal counters for each
  phase (replayed records, truncated tails, recovered sessions,
  duplicate acks).

A client ``shutdown`` then drains the final gateway, which must exit 0.
The journal directory is left on disk for CI to upload as an artifact.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/recovery_soak.py [--journal DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import SpecCC  # noqa: E402
from repro.service.server import _Server  # noqa: E402

DOCUMENT = (
    "If the sensor is active, the valve is opened.\n"
    "If the button is pressed, the lamp is activated."
)
EDITS = {
    3: "If the button is pressed, the lamp is not activated.",
    5: "If the sensor is active, the valve is not opened.",
    7: "If the button is pressed, the lamp is activated and the bell is rung.",
}

#: The client's whole history, rid -> request.  Checks carry
#: ``timings=False`` — the repo's byte-identity convention.
HISTORY = {
    1: {"op": "load", "document": DOCUMENT},
    2: {"op": "check", "timings": False},
    3: {"op": "update", "id": "R2", "text": EDITS[3]},
    4: {"op": "check", "timings": False},
    5: {"op": "update", "id": "R1", "text": EDITS[5]},
    6: {"op": "check", "timings": False},
    7: {"op": "update", "id": "R2", "text": EDITS[7]},
    8: {"op": "check", "timings": False},
}

TOKEN = "soak"


def sequential_reference() -> dict:
    """rid -> canonical report bytes, from a dedicated in-process run."""
    SpecCC.clear_caches()
    server = _Server(SpecCC())
    reports = {}
    for rid in sorted(HISTORY):
        response = server.handle(dict(HISTORY[rid]))
        if HISTORY[rid]["op"] == "check":
            reports[rid] = json.dumps(response["report"], sort_keys=True)
    return reports


def child_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


def spawn_gateway(journal: Path, faults: dict = None) -> subprocess.Popen:
    extra = {"REPRO_FAULTS": json.dumps(faults)} if faults else {}
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--tcp", "127.0.0.1:0",
            "--journal", str(journal),
        ],
        env=child_env(**extra),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )


def read_address(stderr) -> tuple:
    deadline = time.monotonic() + 60.0
    marker = "listening on "
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            break
        line = line.strip()
        print(f"[gateway] {line}")
        if line.startswith(marker):
            host, _, port = line[len(marker):].strip().rpartition(":")
            return host, int(port)
    raise RuntimeError(f"gateway never printed {marker!r}")


class Client:
    """One JSON-lines TCP connection to the gateway."""

    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port), timeout=180.0)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def send(self, payload: dict) -> None:
        self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.wfile.flush()

    def request(self, payload: dict) -> dict:
        self.send(payload)
        line = self.rfile.readline()
        assert line, "gateway closed the connection mid-request"
        response = json.loads(line.decode("utf-8"))
        assert response.get("ok"), response
        return response

    def request_lost(self, payload: dict) -> None:
        """Send *payload* and assert the ack never arrives (the crash)."""
        self.send(payload)
        try:
            line = self.rfile.readline()
        except OSError:
            line = b""
        assert not line, f"expected the gateway to die, got ack {line!r}"

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def play(client: Client, rids, reference: dict) -> dict:
    """Drive HISTORY rids in order, byte-checking every check report."""
    last = None
    for rid in rids:
        last = client.request(dict(HISTORY[rid], rid=rid))
        if HISTORY[rid]["op"] == "check":
            got = json.dumps(last["report"], sort_keys=True)
            assert got == reference[rid], f"rid {rid} report diverged"
    return last


def expect_exit(gateway: subprocess.Popen, code: int, what: str) -> None:
    got = gateway.wait(timeout=60.0)
    assert got == code, f"{what}: gateway exited {got}, expected {code}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--journal", type=Path,
        default=Path(tempfile.mkdtemp(prefix="recovery-soak-")),
        help="journal directory (kept on disk for artifact upload)",
    )
    args = parser.parse_args(argv)
    journal = args.journal
    reference = sequential_reference()
    print(f"sequential reference: {len(reference)} check reports")
    print(f"journal directory: {journal}")

    # ---- Phase A: serve until a scheduled crash AFTER a durable append.
    # Appends are 0-ordinal per process: load(0), check(1), update(2),
    # check(3) <- journal_crash: record durable, process dies pre-ack.
    gateway = spawn_gateway(
        journal, faults={"faults": [{"kind": "journal_crash", "task": 3}]}
    )
    try:
        client = Client(*read_address(gateway.stderr))
        attach = client.request({"op": "attach", "token": TOKEN})
        assert attach["last_rid"] is None, attach
        play(client, (1, 2, 3), reference)
        client.request_lost(dict(HISTORY[4], rid=4))
        client.close()
        expect_exit(gateway, 1, "phase A (scheduled crash)")
        print("phase A: gateway died after durably journaling rid 4, before ack")
    finally:
        if gateway.poll() is None:
            gateway.kill()
            gateway.wait(timeout=15)

    # ---- Phase B: restart, resume, retry the unacknowledged rid.
    gateway = spawn_gateway(journal)
    try:
        client = Client(*read_address(gateway.stderr))
        attach = client.request({"op": "attach", "token": TOKEN})
        # The crash landed between append and ack: the watermark proves
        # rid 4 was applied, and the retry dedupes instead of re-running.
        assert attach["last_rid"] == 4, attach
        assert attach["revision"] == 2, attach
        assert attach["replayed_records"] == 4, attach
        retried = client.request(dict(HISTORY[4], rid=4))
        assert retried.get("duplicate") is True, retried
        got = json.dumps(retried["report"], sort_keys=True)
        assert got == reference[4], "duplicate ack report diverged"
        print("phase B: attach resumed at rid 4; retry deduplicated, "
              "report byte-identical")

        stats = client.request({"op": "stats"})["journal"]
        assert stats["recovered_sessions"] == 1, stats
        assert stats["replayed_records"] == 4, stats
        assert stats["truncated_tails"] == 0, stats
        assert stats["duplicates"] == 1, stats
        assert stats["appends"] == 0, stats

        play(client, (5, 6), reference)  # fresh work journals again
        stats = client.request({"op": "stats"})["journal"]
        assert stats["appends"] == 2, stats
        ack = client.request({"op": "shutdown"})
        assert ack["ok"], ack
        client.close()
        expect_exit(gateway, 0, "phase B (graceful drain)")
        print("phase B: journal counters exact; graceful drain exited 0")
    finally:
        if gateway.poll() is None:
            gateway.kill()
            gateway.wait(timeout=15)

    # ---- Phase C: a torn write — half a frame reaches the disk.
    gateway = spawn_gateway(
        journal, faults={"faults": [{"kind": "journal_torn", "task": 0}]}
    )
    try:
        client = Client(*read_address(gateway.stderr))
        attach = client.request({"op": "attach", "token": TOKEN})
        assert attach["last_rid"] == 6, attach
        client.request_lost(dict(HISTORY[7], rid=7))
        client.close()
        expect_exit(gateway, 1, "phase C (torn write)")
        print("phase C: gateway died with half of rid 7's frame on disk")
    finally:
        if gateway.poll() is None:
            gateway.kill()
            gateway.wait(timeout=15)

    # ---- Phase D: the torn tail is truncated, never replayed; the
    # retry applies FRESH (rid 7 was never acknowledged or durable).
    gateway = spawn_gateway(journal)
    try:
        client = Client(*read_address(gateway.stderr))
        attach = client.request({"op": "attach", "token": TOKEN})
        assert attach["last_rid"] == 6, attach
        assert attach["revision"] == 3, attach
        assert attach["replayed_records"] == 6, attach
        retried = client.request(dict(HISTORY[7], rid=7))
        assert "duplicate" not in retried, retried
        play(client, (8,), reference)
        stats = client.request({"op": "stats"})["journal"]
        assert stats["recovered_sessions"] == 1, stats
        assert stats["replayed_records"] == 6, stats
        assert stats["truncated_tails"] == 1, stats
        assert stats["duplicates"] == 0, stats
        assert stats["appends"] == 2, stats
        print("phase D: torn tail truncated and counted; rid 7 re-applied "
              "exactly once; final report byte-identical")

        ack = client.request({"op": "shutdown"})
        assert ack["ok"], ack
        client.close()
        expect_exit(gateway, 0, "phase D (graceful drain)")
    finally:
        if gateway.poll() is None:
            gateway.kill()
            gateway.wait(timeout=15)

    print("recovery soak passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
