"""Core performance benchmark runner — emits ``BENCH_core.json``.

Tracks the perf trajectory of the hot paths the paper's pipeline leans on:

* **micro**: GPVW translation of deep ``X``-chains (the discrete-time
  encoding of Section IV-E produces chains up to depth 180), measured both
  *cold* (caches cleared between calls) and as a *loop* of repeated
  translations of the same formula — the workload the partition-repair and
  localization loops generate.
* **end_to_end**: the three Table I case-study blocks (CARA, TELEPROMISE,
  robot) run through the full SpecCC pipeline, with their verdicts recorded
  so speedups can never silently change results.
* **incremental_semantics** (schema ``/2``): the analysis-graph scenario —
  a document of antonym-coupled sentence pairs, single-sentence edits
  re-checked through one long-lived session.  Records how many sentences
  Algorithm 1 actually re-analysed per edit (the graph bounds it to the
  edited subject's sentences) and the speedup over fresh per-edit checks.
* **tracing_overhead** (schema ``/3``): the 13-document corpus of CARA's
  Table I component blocks checked untraced and under a live process tracer
  (:mod:`repro.obs`), asserting the always-compiled-in instrumentation
  stays within a 5% overhead budget when tracing is on (the tracing-off
  path is a shared null span and costs one global read per site).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_core.py                 # -> BENCH_core.json
    PYTHONPATH=src python benchmarks/bench_core.py --quick         # smoke run (CI)
    PYTHONPATH=src python benchmarks/bench_core.py --save-baseline # refresh baseline_core.json

When ``benchmarks/baseline_core.json`` exists (recorded on the pre-interning
seed code), the report embeds it under ``"baseline"`` and computes
``"speedup"`` ratios per benchmark.  The script intentionally has no
dependency on the caching internals: it probes for the cache-clearing hooks
with ``getattr`` so it runs unmodified on older revisions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import SpecCC, SpecCCConfig, TranslationOptions  # noqa: E402
from repro.automata import gpvw  # noqa: E402
from repro.casestudies import (  # noqa: E402
    TABLE_INSTANCES,
    application_requirements,
    component_requirements,
    mode_switching_requirements,
    robot_requirements,
)
from repro.logic.ast import Atom, next_chain  # noqa: E402

SCHEMA = "repro-bench-core/3"
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_core.json"


def _clear_caches() -> None:
    """Drop every translation/formula cache the current revision exposes,
    including the per-node memos on live formulas (so "cold" timings really
    re-run NNF/simplify/sort-key work, not just the tableau)."""
    clear = getattr(gpvw, "clear_translation_cache", None)
    if clear is not None:
        clear()
    from repro.logic import ast as logic_ast

    clear = getattr(logic_ast, "clear_node_caches", None)
    if clear is not None:
        clear()
    # Pre-interning revisions memoise with functools.lru_cache instead.
    from repro.logic import nnf, rewrite

    for fn in (nnf.to_nnf, rewrite.simplify, getattr(logic_ast, "next_depth", None)):
        cache_clear = getattr(fn, "cache_clear", None)
        if cache_clear is not None:
            cache_clear()
    try:
        from repro.synthesis import realizability

        clear = getattr(realizability, "clear_caches", None)
        if clear is not None:
            clear()
    except ImportError:  # pragma: no cover - very old revisions
        pass


def _time(action: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - start)
    return best


def bench_micro(quick: bool) -> Dict[str, Dict[str, float]]:
    depths = (50, 150) if quick else (50, 100, 150)
    loop_iterations = 4 if quick else 8
    results: Dict[str, Dict[str, float]] = {}
    for depth in depths:
        chain = next_chain(Atom("p"), depth)

        def cold() -> None:
            _clear_caches()
            gpvw.translate(chain)

        def loop() -> None:
            _clear_caches()
            for _ in range(loop_iterations):
                gpvw.translate(chain)

        results[f"gpvw_xchain_depth{depth}"] = {
            "cold_seconds": _time(cold, 2 if quick else 7),
            "loop_seconds": _time(loop, 1 if quick else 3),
            "loop_iterations": loop_iterations,
        }
    return results


def _paper_tool() -> SpecCC:
    return SpecCC(SpecCCConfig(translation=TranslationOptions(next_as_x=False)))


def bench_end_to_end(quick: bool) -> Dict[str, Dict[str, object]]:
    results: Dict[str, Dict[str, object]] = {}

    def run(name: str, batches: List) -> None:
        _clear_caches()
        tool = _paper_tool()
        verdicts = []
        start = time.perf_counter()
        for requirements in batches:
            report = tool.check(requirements)
            verdicts.append(report.verdict.value)
        results[name] = {
            "seconds": time.perf_counter() - start,
            "verdicts": verdicts,
            "consistent": all(v == "realizable" for v in verdicts),
        }

    cara = [mode_switching_requirements()]
    if not quick:
        cara.extend(reqs for _, reqs in sorted(component_requirements().items()))
    run("table1_cara", cara)

    tele = sorted(application_requirements().items())
    if quick:
        tele = tele[:2]
    run("table1_telepromise", [reqs for _, reqs in tele])

    robots = sorted(TABLE_INSTANCES.values())
    if quick:
        robots = robots[:1]
    run("table1_robot", [robot_requirements(r, n) for r, n in robots])
    return results


# ---------------------------------------------------- incremental semantics
def _semantic_workload(groups: int) -> List[tuple]:
    """2 * groups sentences: each group's subject carries an antonym pair,
    so Algorithm 1 forms one analysis unit per group."""
    requirements = []
    for group in range(1, groups + 1):
        requirements.append(
            (
                f"A{group}",
                f"If the sensor {group} is active, the device {group} is started.",
            )
        )
        requirements.append(
            (
                f"B{group}",
                f"If the sensor {group} is inactive, the device {group} is stopped.",
            )
        )
    return requirements


def bench_incremental_semantics(quick: bool) -> Dict[str, object]:
    """Edit 1 of 2N sentences; count what Algorithm 1 re-analyses."""
    from repro import SpecSession

    groups = 6 if quick else 20
    edits = 3 if quick else 10
    requirements = _semantic_workload(groups)

    edit_sequence = []
    for edit in range(edits):
        group = (edit * 7) % groups + 1
        adjective = "normal" if edit % 2 == 0 else "active"
        edit_sequence.append(
            (
                f"A{group}",
                f"If the sensor {group} is {adjective}, "
                f"the device {group} is started.",
            )
        )

    # Incremental: one session over the analysis graph.
    _clear_caches()
    session = SpecSession(_paper_tool())
    for identifier, sentence in requirements:
        session.add(identifier, sentence)
    first = session.check()
    incremental_verdicts = []
    sentences_reanalysed = []
    units_replayed = []
    start = time.perf_counter()
    for identifier, sentence in edit_sequence:
        session.update(identifier, sentence)
        report = session.check()
        incremental_verdicts.append(report.verdict.value)
        sentences_reanalysed.append(len(report.delta.semantics_reanalysed))
        units_replayed.append(report.delta.semantics_misses)
    incremental_seconds = time.perf_counter() - start

    # Fresh: a cold full check per edit (what the one-shot CLI costs).
    state = dict(requirements)
    fresh_verdicts = []
    start = time.perf_counter()
    for identifier, sentence in edit_sequence:
        state[identifier] = sentence
        _clear_caches()
        fresh_verdicts.append(
            _paper_tool().check(list(state.items())).verdict.value
        )
    fresh_seconds = time.perf_counter() - start

    return {
        "sentences": len(requirements),
        "analysis_units": first.delta.semantics_components,
        "edits": edits,
        "incremental_seconds": incremental_seconds,
        "fresh_seconds": fresh_seconds,
        "speedup": round(fresh_seconds / incremental_seconds, 2)
        if incremental_seconds > 0
        else None,
        "sentences_reanalysed_per_edit": sentences_reanalysed,
        "max_sentences_reanalysed_per_edit": max(sentences_reanalysed),
        "units_replayed_per_edit": units_replayed,
        "max_units_replayed_per_edit": max(units_replayed),
        "verdicts_match": incremental_verdicts == fresh_verdicts,
    }


# -------------------------------------------------------- tracing overhead
def bench_tracing_overhead(quick: bool) -> Dict[str, object]:
    """Traced vs. untraced full-pipeline checks over the 13-doc corpus —
    the paper's own workload: CARA's 13 Table I component requirement
    blocks, each checked as one document.

    Both passes start cache-cold and rebuild the tool, so the only
    difference is whether a process tracer is installed.  Best-of-N
    timing on each side squeezes out scheduler noise before the ratio.
    """
    from repro.obs.trace import Tracer, set_process_tracer

    documents = [reqs for _, reqs in sorted(component_requirements().items())]
    repeats = 2 if quick else 5

    def run_corpus() -> None:
        _clear_caches()
        tool = _paper_tool()
        for requirements in documents:
            tool.check(requirements)

    untraced_seconds = _time(run_corpus, repeats)

    spans = 0

    def run_traced() -> None:
        nonlocal spans
        tracer = Tracer(name="bench")
        previous = set_process_tracer(tracer)
        try:
            run_corpus()
        finally:
            set_process_tracer(previous)
        spans = len(tracer.records())

    traced_seconds = _time(run_traced, repeats)
    overhead = (
        (traced_seconds / untraced_seconds - 1.0) * 100.0
        if untraced_seconds > 0
        else 0.0
    )
    return {
        "documents": len(documents),
        "repeats": repeats,
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "overhead_percent": round(overhead, 2),
        "spans": spans,
        "within_budget": overhead <= 5.0,
    }


def _flat_times(report: Dict) -> Dict[str, float]:
    """Map benchmark name -> headline seconds, for speedup ratios."""
    flat: Dict[str, float] = {}
    for name, data in report.get("micro", {}).items():
        flat[f"{name}:cold"] = data["cold_seconds"]
        flat[f"{name}:loop"] = data["loop_seconds"]
    for name, data in report.get("end_to_end", {}).items():
        flat[name] = data["seconds"]
    return flat


def build_report(quick: bool) -> Dict:
    report: Dict = {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "micro": bench_micro(quick),
        "end_to_end": bench_end_to_end(quick),
        "incremental_semantics": bench_incremental_semantics(quick),
        "tracing_overhead": bench_tracing_overhead(quick),
    }
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        report["baseline"] = baseline
        # Baseline numbers are only comparable when both runs covered the
        # same depths/rows (a --quick run against a full baseline is not).
        if baseline.get("quick", False) == quick:
            base_times = _flat_times(baseline)
            now_times = _flat_times(report)
            report["speedup"] = {
                name: round(base_times[name] / seconds, 2)
                for name, seconds in now_times.items()
                if name in base_times and seconds > 0
            }
            # Speedups are only meaningful when they do not change results.
            report["verdicts_match_baseline"] = all(
                data["verdicts"] == baseline["end_to_end"][name]["verdicts"]
                for name, data in report["end_to_end"].items()
                if name in baseline.get("end_to_end", {})
            )
    return report


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_core.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced depths/rows for CI smoke runs",
    )
    parser.add_argument(
        "--save-baseline", action="store_true",
        help="also write the timings to benchmarks/baseline_core.json",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    if args.save_baseline:
        baseline = {k: report[k] for k in ("schema", "quick", "python", "platform", "micro", "end_to_end")}
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")

    for name, seconds in sorted(_flat_times(report).items()):
        ratio = report.get("speedup", {}).get(name)
        suffix = f"  ({ratio:.2f}x vs baseline)" if ratio else ""
        print(f"{name:<40} {seconds:>10.4f}s{suffix}")
    semantics = report["incremental_semantics"]
    print(
        f"incremental_semantics: <= {semantics['max_sentences_reanalysed_per_edit']}"
        f"/{semantics['sentences']} sentences re-analysed per edit, "
        f"{semantics['speedup']}x vs fresh per-edit checks"
    )
    tracing = report["tracing_overhead"]
    print(
        f"tracing_overhead: {tracing['overhead_percent']}% over "
        f"{tracing['documents']} documents ({tracing['spans']} spans; "
        f"budget 5%: {'ok' if tracing['within_budget'] else 'EXCEEDED'})"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
