"""Loopback TCP soak: gateway + 2 remote workers + a scheduled crash.

CI's end-to-end exercise of the network serving tier exactly as
deployed: a ``python -m repro serve --tcp ... --workers-bind ...``
gateway process, two ``python -m repro worker`` processes registered
with its hub, and the standard ``REPRO_FAULTS`` crash plan armed over
the 13-document corpus.  The fault kills one worker mid-batch; this
harness restarts it (the external supervisor's job — systemd in a real
deployment), the worker re-registers under the same name at the next
spawn generation, and the batch must come back **byte-identical to the
sequential reference** with coherent recovery counters readable over
the wire through the ``stats`` op.  Unlike the in-process pool (one
worker per shard, so a crash is exactly one death), a remote worker
hosts several shards, and a dropped connection fails every dispatch in
flight on it — each one a counted death, reconnect-wait and retry — so
the harness asserts the invariant ``deaths == restarts == retries`` and
``attempts == documents + retries`` rather than exact ones.  A client
``shutdown`` then drains the gateway, and every process must exit 0.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/tcp_soak.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_service import fault_documents  # noqa: E402
from repro.service.batch import BatchChecker  # noqa: E402

PLAN = {
    "seed": 11,
    "faults": [{"kind": "crash", "shard": 0, "task": 2, "max_spawn": 0}],
}

WORKER_NAMES = ("w0", "w1")  # w0 registers first => fault index 0


def child_env(**extra: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.update(extra)
    return env


def spawn_worker(port: int, name: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--name",
            name,
        ],
        env=child_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def read_address(stderr, marker: str) -> tuple:
    """Parse ``<marker> HOST:PORT`` from the gateway's stderr."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = stderr.readline()
        if not line:
            break
        line = line.strip()
        print(f"[gateway] {line}")
        if line.startswith(marker):
            host, _, port = line[len(marker):].strip().rpartition(":")
            return host, int(port)
    raise RuntimeError(f"gateway never printed {marker!r}")


class Client:
    """One JSON-lines TCP connection to the gateway."""

    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port), timeout=180.0)
        self.rfile = self.sock.makefile("rb")
        self.wfile = self.sock.makefile("wb")

    def request(self, payload: dict) -> dict:
        self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.wfile.flush()
        line = self.rfile.readline()
        assert line, "gateway closed the connection mid-request"
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


def main() -> int:
    documents = fault_documents()
    reference = [
        json.dumps(result.data, sort_keys=True)
        for result in BatchChecker(workers=1).check_documents(documents)
    ]
    print(f"sequential reference: {len(reference)} documents")

    gateway = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--workers-bind",
            "127.0.0.1:0",
            "--min-workers",
            "2",
        ],
        env=child_env(REPRO_FAULTS=json.dumps(PLAN)),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    workers: dict = {}
    try:
        worker_host, worker_port = read_address(
            gateway.stderr, "workers connect to "
        )
        host, port = read_address(gateway.stderr, "listening on ")
        client = Client(host, port)

        def live_workers() -> dict:
            stats = client.request({"op": "stats"})
            assert stats["ok"], stats
            for row in stats["pools"]:
                if row.get("remote"):
                    return row["remote"]["workers"]
            return {}

        # Register w0 strictly before w1 so the crash plan's index-0
        # fault arms inside the worker that hosts the most shards.
        for name in WORKER_NAMES:
            workers[name] = spawn_worker(worker_port, name)
            deadline = time.monotonic() + 60.0
            while name not in live_workers():
                assert time.monotonic() < deadline, f"{name} never registered"
                time.sleep(0.1)
            print(f"worker {name} registered")

        # The external supervisor: restart w0 after the scheduled crash.
        def monitor() -> None:
            while True:
                if workers["w0"].poll() is not None:
                    print("[monitor] w0 died; restarting")
                    workers["w0"] = spawn_worker(worker_port, "w0")
                    return
                time.sleep(0.05)

        watcher = threading.Thread(target=monitor, daemon=True)
        watcher.start()

        start = time.monotonic()
        response = client.request(
            {
                "op": "batch",
                "workers": 2,
                "documents": [
                    {"name": name, "text": text} for name, text in documents
                ],
            }
        )
        seconds = time.monotonic() - start
        assert response["ok"], response
        got = [
            json.dumps(entry["report"], sort_keys=True)
            for entry in response["results"]
        ]
        assert got == reference, "TCP batch diverged from sequential reference"
        print(f"13/13 documents byte-identical over TCP in {seconds:.2f}s")

        watcher.join(timeout=30.0)
        assert not watcher.is_alive(), "the scheduled crash never fired"

        stats = client.request({"op": "stats"})
        row = next(row for row in stats["pools"] if row.get("remote"))
        supervision = row["supervision"]
        deaths = supervision["worker_deaths"]
        # One scheduled crash; every dispatch in flight on the dead
        # connection counts one death/restart/retry (w0 hosts several
        # shards), bounded by the 2-worker batch concurrency.
        assert 1 <= deaths <= len(documents), supervision
        assert supervision["restarts"] == deaths, supervision
        assert supervision["retries"] == deaths, supervision
        assert supervision["attempts"] == len(documents) + deaths, supervision
        assert supervision["timeouts"] == 0, supervision
        assert supervision["degraded"] is False, supervision
        print(f"supervision counters: {supervision}")

        # The restarted worker re-registers under the same name at the
        # next spawn generation (where max_spawn=0 keeps the fault off).
        deadline = time.monotonic() + 60.0
        while live_workers().get("w0", {}).get("spawn") != 1:
            assert time.monotonic() < deadline, "w0 never re-registered"
            time.sleep(0.1)
        print("w0 re-registered at spawn generation 1")

        metrics = client.request({"op": "metrics", "full": False})
        counters = metrics["metrics"]["counters"]
        assert counters.get("gateway.requests", 0) > 0, counters
        assert metrics["metrics"]["gateway"]["connections_open"] >= 1

        ack = client.request({"op": "shutdown"})
        assert ack["ok"], ack
        client.close()

        assert gateway.wait(timeout=60.0) == 0, "gateway exited non-zero"
        for name, proc in workers.items():
            assert proc.wait(timeout=30.0) == 0, f"worker {name} exited non-zero"
        print("graceful drain: gateway and both workers exited 0")
        print("tcp soak passed")
        return 0
    finally:
        for proc in list(workers.values()) + [gateway]:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=15)


if __name__ == "__main__":
    raise SystemExit(main())
