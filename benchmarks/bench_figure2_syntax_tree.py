"""Figure 2: the syntax tree of Requirement Req-17.

The paper's Figure 2 decomposes "When auto-control mode is entered,
eventually the cuff will be inflated." into a ``when`` subclause
(subject "auto-control mode", predicate "is entered") and a main clause
with the ``eventually`` modifier (subject "the cuff", predicate "will be
inflated").  This benchmark regenerates and prints the tree and asserts
the published structure node by node.
"""

from __future__ import annotations

from repro.nlp import parse_sentence, render_sentence, syntax_tree

REQ_17 = "When auto-control mode is entered, eventually the cuff will be inflated."


def test_figure2_structure(capsys):
    sentence = parse_sentence(REQ_17)
    tree = syntax_tree(sentence)

    # Figure 2, top level: sentence -> subclause + clause.
    assert tree.label == "sentence"
    assert [child.label for child in tree.children] == ["subclause", "clause"]

    subclause, main = tree.children
    # subclause -> subordinator "when" + clause(subject, predicate).
    assert subclause.children[0].label == "subordinator"
    assert subclause.children[0].text == "when"
    inner = subclause.children[1]
    subject = next(c for c in inner.children if c.label == "subject")
    predicate = next(c for c in inner.children if c.label == "predicate")
    assert subject.text == "auto_control_mode"
    assert "enter" in predicate.text

    # main clause -> modifier "eventually" + subject "cuff" + predicate.
    labels = [c.label for c in main.children]
    assert labels == ["modifier", "subject", "predicate"]
    assert main.children[0].text == "eventually"
    assert main.children[1].text == "cuff"
    assert "inflate" in main.children[2].text

    with capsys.disabled():
        print("\nFigure 2 — syntax tree of Req-17")
        print(render_sentence(sentence))


def test_figure2_parse_benchmark(benchmark):
    sentence = benchmark(parse_sentence, REQ_17)
    assert len(sentence.pre) == 1
