"""Shared helpers for the Table I / figure benchmarks."""

from __future__ import annotations

import pytest

from repro import SpecCC, SpecCCConfig, TranslationOptions


@pytest.fixture(scope="session")
def paper_tool() -> SpecCC:
    """SpecCC configured like the paper's prototype: the translator drops
    the "next" marker (as the appendix gold formulas do) and the optimal
    time abstraction runs with the running example's budget B=5."""
    return SpecCC(SpecCCConfig(translation=TranslationOptions(next_as_x=False)))


def table_row(name: str, spec, report, seconds: float) -> str:
    """One Table I row: name, #formulas, #inputs, #outputs, time."""
    return (
        f"{name:<40} {len(spec.requirements):>4} "
        f"{spec.num_inputs:>4} {spec.num_outputs:>4} "
        f"{report.verdict.value:>12} {seconds:>8.3f}s"
    )


HEADER = f"{'Specification':<40} {'frm':>4} {'in':>4} {'out':>4} {'verdict':>12} {'time':>9}"
