"""Table I, TELE block: the five TELEPROMISE applications.

Paper reference:

    1  Shopping              29  11  24   8s  consistent
    2  Article processing    17   3  13   1s  consistent
    3  On-line reservation    6   3   4   1s  consistent
    4  Information           15   8  14   1s  consistent (after repartition)
    5  Local bulletin board  17   7  16   1s  consistent (after repartition)

"G4LTL failed to generate controllers for the last two specifications.
The failure was caused by the classification of input and output
variables.  After locating the problem and modifying the input/output
variable partition, the specifications are consistent."  The benchmark
asserts exactly that: rows 4 and 5 need at least one partition repair,
rows 1-3 need none, and all five end up consistent.
"""

from __future__ import annotations

import time

from repro.casestudies import (
    INITIALLY_FAILING_ROWS,
    application_requirements,
)
from repro.casestudies.telepromise import ROW_NAMES

from .conftest import HEADER, table_row

PAPER_ROWS = {
    "1": (29, 11, 24, 8),
    "2": (17, 3, 13, 1),
    "3": (6, 3, 4, 1),
    "4": (15, 8, 14, 1),
    "5": (17, 7, 16, 1),
}


def test_table1_telepromise_rows(paper_tool, capsys):
    lines = [HEADER]
    for row, requirements in application_requirements().items():
        start = time.perf_counter()
        report = paper_tool.check(requirements)
        seconds = time.perf_counter() - start
        spec = report.translation
        label = f"{row} {ROW_NAMES[row]}"
        suffix = f"  repairs={report.repair_attempts}"
        lines.append(table_row(label, spec, report, seconds) + suffix)

        paper_formulas, paper_in, paper_out, _ = PAPER_ROWS[row]
        assert report.consistent, row
        assert len(spec.requirements) == paper_formulas, row
        assert spec.num_inputs == paper_in, row
        assert spec.num_outputs == paper_out, row
        if row in INITIALLY_FAILING_ROWS:
            # The published G4LTL failures: repaired via the partition.
            assert report.repair_attempts >= 1, row
            assert report.repaired_partition is not None, row
        else:
            assert report.repair_attempts == 0, row
    with capsys.disabled():
        print("\nTable I — TELE block (paper: rows 4-5 repaired, all consistent)")
        print("\n".join(lines))


def test_shopping_benchmark(paper_tool, benchmark):
    requirements = application_requirements()["1"]
    report = benchmark(paper_tool.check, requirements)
    assert report.consistent
