"""Ablation: semantic reasoning (Section IV-D) on versus off.

The paper motivates Algorithm 1 with two savings: fewer atomic
propositions ("we can reduce the number of atomic propositions used in
the generated formulas") and no mutual-exclusion assumptions ("avoid
adding the assumptions on the mutual exclusive propositions").  This
benchmark quantifies both on the CARA mode-switching specification and on
the worked Req-32/44 example.
"""

from __future__ import annotations

from repro.casestudies import mode_switching_requirements
from repro.translate import (
    TranslationOptions,
    Translator,
    analyse,
    mutual_exclusion_assumptions,
)
from repro.nlp import parse_sentence


def translate_with(semantic_reasoning: bool):
    translator = Translator(
        options=TranslationOptions(
            next_as_x=False, semantic_reasoning=semantic_reasoning
        )
    )
    return translator.translate(mode_switching_requirements())


def test_semantic_reasoning_reduces_propositions(capsys):
    with_reasoning = translate_with(True)
    without = translate_with(False)
    reduced = len(with_reasoning.variables())
    baseline = len(without.variables())
    assert reduced < baseline

    analysis = with_reasoning.analysis
    assumptions = mutual_exclusion_assumptions(analysis)
    assert assumptions  # the pairs exist, and none had to become formulas

    with capsys.disabled():
        print("\nAblation — semantic reasoning (CARA mode switching)")
        print(f"  propositions with reasoning   : {reduced}")
        print(f"  propositions without          : {baseline}")
        print(f"  antonym pairs found           : {len(analysis.antonym_pairs())}")
        print(f"  mutex assumptions avoided     : {len(assumptions)}")


def test_paper_worked_example_req32_req44():
    # Section IV-D: available/unavailable under subject pulse_wave.
    sentences = [
        parse_sentence(
            "If pulse wave or arterial line is available, and cuff is selected,"
            " corroboration is triggered."
        ),
        parse_sentence(
            "If pulse wave and arterial line are unavailable, and cuff is"
            " selected, and blood pressure is not valid, next manual mode is"
            " started."
        ),
    ]
    analysis = analyse(sentences)
    pairs = analysis.antonym_pairs()
    assert ("pulse_wave", "available", "unavailable") in pairs
    assert ("arterial_line", "available", "unavailable") in pairs


def test_reasoning_benchmark(benchmark):
    spec = benchmark(translate_with, True)
    assert spec.analysis.antonym_pairs()
