"""Table I, Robot block: the rescue-robot scenario of Kress-Gazit et al.

Paper reference:

    1  A robot with 4 rooms       9  2   5  1s  consistent
    2  A robot with 9 rooms      14  2  10  1s  consistent
    3  Two robots with 5 rooms   25  2  11  7s  consistent

All instances must be consistent; the two-robot instance is the hardest
(mutual-exclusion constraints couple the two robots' positions), matching
the paper's slowest robot row.  A scaling sweep beyond the published
instances is included as well.
"""

from __future__ import annotations

import time

from repro.casestudies import TABLE_INSTANCES, robot_requirements

from .conftest import HEADER, table_row

PAPER_ROWS = {
    "1": (9, 2, 5, 1),
    "2": (14, 2, 10, 1),
    "3": (25, 2, 11, 7),
}


def test_table1_robot_rows(paper_tool, capsys):
    lines = [HEADER]
    times = {}
    for row, (robots, rooms) in TABLE_INSTANCES.items():
        requirements = robot_requirements(robots, rooms)
        start = time.perf_counter()
        report = paper_tool.check(requirements)
        seconds = time.perf_counter() - start
        times[row] = seconds
        spec = report.translation
        label = f"{row} {robots} robot(s), {rooms} rooms"
        lines.append(table_row(label, spec, report, seconds))
        paper_formulas, paper_in, paper_out, _ = PAPER_ROWS[row]
        assert report.consistent, row
        assert len(spec.requirements) == paper_formulas, row
        assert spec.num_inputs == paper_in, row
        assert spec.num_outputs == paper_out, row
    with capsys.disabled():
        print("\nTable I — Robot block (paper: all consistent, 2-robot slowest)")
        print("\n".join(lines))


def test_robot_scaling_sweep(paper_tool, capsys):
    """Beyond Table I: scale rooms and robots further."""
    lines = [HEADER]
    for robots, rooms in [(1, 15), (2, 8), (3, 5)]:
        requirements = robot_requirements(robots, rooms)
        start = time.perf_counter()
        report = paper_tool.check(requirements)
        seconds = time.perf_counter() - start
        label = f"sweep {robots} robot(s), {rooms} rooms"
        lines.append(table_row(label, report.translation, report, seconds))
        assert report.consistent, (robots, rooms)
    with capsys.disabled():
        print("\nRobot scaling sweep (extension beyond Table I)")
        print("\n".join(lines))


def test_two_robot_benchmark(paper_tool, benchmark):
    requirements = robot_requirements(2, 5)
    report = benchmark(paper_tool.check, requirements)
    assert report.consistent
