"""Ablation: time abstraction (Section IV-E) — none vs GCD vs optimal.

Reproduces the worked example: Theta = {3, 180, 60} (Req-08, Req-28,
Req-42), where the GCD reduction still leaves 81 Next operators while the
arrival-error optimisation with B=5 leaves 4 (d=60, theta'=(0,3,1),
Delta=(3,0,0)) — and compares the paper's bit-blasting route against the
exact reference solver.
"""

from __future__ import annotations

from repro.casestudies import mode_switching_requirements
from repro.smt import (
    TimeAbstractionProblem,
    gcd_reduction,
    solve_bitblast,
    solve_reference,
)
from repro.translate import AbstractionMethod, TranslationOptions, Translator


def spec_with(method: AbstractionMethod):
    translator = Translator(
        options=TranslationOptions(next_as_x=False),
        abstraction=method,
        error_bound=5,
    )
    return translator.translate(mode_switching_requirements())


def total_next(spec) -> int:
    from repro.logic import Next, walk

    return sum(
        1
        for requirement in spec.requirements
        for node in walk(requirement.formula)
        if isinstance(node, Next)
    )


def test_abstraction_ablation(capsys):
    none = spec_with(AbstractionMethod.NONE)
    gcd = spec_with(AbstractionMethod.GCD)
    optimal = spec_with(AbstractionMethod.OPTIMAL)

    counts = {
        "none": total_next(none),
        "gcd": total_next(gcd),
        "optimal": total_next(optimal),
    }
    # Paper: 3+180+60 = 243 raw; GCD(=3) leaves 1+60+20 = 81; the optimal
    # abstraction at B=5 leaves 0+3+1 = 4.
    assert counts["none"] == 243
    assert counts["gcd"] == 81
    assert counts["optimal"] == 4
    assert optimal.abstraction.solution.divisor == 60

    with capsys.disabled():
        print("\nAblation — time abstraction (Next operators left)")
        for method, count in counts.items():
            print(f"  {method:<8}: {count}")


def test_paper_running_example_both_solvers(capsys):
    problem = TimeAbstractionProblem.of([3, 180, 60], 5)
    reference = solve_reference(problem)
    bitblast = solve_bitblast(problem)
    baseline = gcd_reduction([3, 180, 60])
    assert reference.divisor == 60
    assert (bitblast.cost_next, bitblast.cost_error) == (4, 3)
    assert (reference.cost_next, reference.cost_error) == (4, 3)
    with capsys.disabled():
        print("\nSection IV-E running example (Theta={3,180,60}, B=5)")
        print(f"  GCD      : d={baseline.divisor}, sum theta'={baseline.cost_next}")
        print(f"  reference: d={reference.divisor}, theta'={reference.scaled}, Delta={reference.errors}")
        print(f"  bitblast : d={bitblast.divisor}, theta'={bitblast.scaled}, Delta={bitblast.errors}")


def test_bitblast_benchmark(benchmark):
    problem = TimeAbstractionProblem.of([3, 180, 60], 5)
    solution = benchmark(solve_bitblast, problem)
    assert solution.cost_next == 4
