"""Ablation: synthesis engine comparison and modular decomposition.

Design choices called out in DESIGN.md:

* the k-co-Büchi safety game (G4LTL's algorithm) vs SAT-based bounded
  synthesis on the same small specifications;
* variable-partitioned modular checking vs monolithic checking;
* the CDCL SAT solver vs the brute-force reference on the bounded-
  synthesis encodings.
"""

from __future__ import annotations

import time

from repro.logic import parse
from repro.sat import CNF, solve, solve_brute
from repro.synthesis import (
    Engine,
    SynthesisLimits,
    Verdict,
    check_realizability,
)

SPECS = [
    ("request/grant", ["G (r -> X g)"], ["r"], ["g"]),
    ("progress", ["G (r -> F g)", "G (c -> !g)"], ["r", "c"], ["g"]),
    ("clairvoyant", ["G (g <-> X X i)"], ["i"], ["g"]),
    ("arbiter", ["G (r1 -> F g1)", "G (r2 -> F g2)", "G (!g1 || !g2)"],
     ["r1", "r2"], ["g1", "g2"]),
]

NO_OBLIGATIONS = SynthesisLimits(use_obligations=False)


def test_engine_comparison(capsys):
    lines = [f"{'spec':<14} {'game':>10} {'bounded-SAT':>12} verdict"]
    for name, texts, inputs, outputs in SPECS:
        formulas = [parse(t) for t in texts]
        start = time.perf_counter()
        game = check_realizability(
            formulas, inputs, outputs,
            engine=Engine.SAFETY_GAME, limits=NO_OBLIGATIONS,
        )
        game_seconds = time.perf_counter() - start
        start = time.perf_counter()
        bounded = check_realizability(
            formulas, inputs, outputs,
            engine=Engine.BOUNDED_SAT, limits=NO_OBLIGATIONS,
        )
        bounded_seconds = time.perf_counter() - start
        assert game.verdict == bounded.verdict, name
        lines.append(
            f"{name:<14} {game_seconds:>9.3f}s {bounded_seconds:>11.3f}s "
            f"{game.verdict.value}"
        )
    with capsys.disabled():
        print("\nAblation — engine comparison (verdicts must agree)")
        print("\n".join(lines))


def test_modular_vs_monolithic(capsys):
    # Ten independent request/grant pairs: modular checking splits them
    # into ten 2-variable games; monolithic checking sees 20 variables and
    # must give up (the explicit alphabet is out of reach).
    formulas = [parse(f"G (r{k} -> X g{k})") for k in range(10)]
    inputs = [f"r{k}" for k in range(10)]
    outputs = [f"g{k}" for k in range(10)]

    start = time.perf_counter()
    modular = check_realizability(
        formulas, inputs, outputs, modular=True, limits=NO_OBLIGATIONS
    )
    modular_seconds = time.perf_counter() - start
    assert modular.verdict is Verdict.REALIZABLE
    assert len(modular.components) == 10

    monolithic = check_realizability(
        formulas, inputs, outputs, modular=False, limits=NO_OBLIGATIONS
    )
    assert monolithic.verdict is Verdict.UNKNOWN  # too many variables

    with capsys.disabled():
        print("\nAblation — modular decomposition")
        print(f"  modular   : realizable in {modular_seconds:.3f}s (10 components)")
        print("  monolithic: unknown (20 variables exceed the explicit engines)")


def test_cdcl_vs_brute_force(capsys):
    import random

    rng = random.Random(7)
    cnf = CNF()
    for _ in range(60):
        clause = []
        for _ in range(3):
            var = rng.randint(1, 14)
            clause.append(var if rng.random() < 0.5 else -var)
        cnf.add(clause)
    cnf.num_vars = 14

    start = time.perf_counter()
    cdcl_result = bool(solve(cnf))
    cdcl_seconds = time.perf_counter() - start
    start = time.perf_counter()
    brute_result = solve_brute(cnf) is not None
    brute_seconds = time.perf_counter() - start
    assert cdcl_result == brute_result
    with capsys.disabled():
        print("\nAblation — CDCL vs brute force (14 vars, 60 clauses)")
        print(f"  CDCL : {cdcl_seconds * 1000:.2f} ms")
        print(f"  brute: {brute_seconds * 1000:.2f} ms")


def test_game_engine_benchmark(benchmark):
    formulas = [parse("G (r -> F g)"), parse("G (g -> X !g)")]
    result = benchmark(
        check_realizability,
        formulas,
        ["r"],
        ["g"],
        engine=Engine.SAFETY_GAME,
        limits=NO_OBLIGATIONS,
    )
    assert result.verdict is Verdict.REALIZABLE
