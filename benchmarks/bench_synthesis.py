"""Synthesis-engine benchmark runner — emits ``BENCH_synthesis.json``.

Measures the two optimisations of the synthesis-engine overhaul and guards
them with correctness cross-checks:

* **propagation**: CDCL clause visits per propagation, two-watched-literal
  lists (``propagation="watch"``) vs the full-clause re-scan reference
  (``propagation="scan"``) on random 3-SAT, pigeonhole and a real
  bounded-synthesis encoding.  The watched scheme must visit at least 2x
  fewer clauses per propagation, and both schemes must agree on every
  verdict.
* **safety_game**: partial-letter exploration vs the concrete
  ``2^|I| * 2^|O|`` enumeration — a wide-output scaling sweep showing the
  partial engine's work no longer depends on the number of don't-care
  outputs, plus byte-identical-strategy equivalence checks on a spec
  portfolio.
* **incremental_bounds**: bounded synthesis over a growing 1→N state
  ladder, one persistent ``IncrementalBoundedSynthesizer``
  (``encoding="incremental"``) vs a from-scratch encoding per bound
  (``encoding="fresh"``) on realizable and unrealizable specs.  Verdict
  ladders must agree between the encodings (and with the committed
  goldens), extracted machines must be byte-identical, and the
  incremental path must pay at least 2x fewer SAT conflicts in
  aggregate.
* **game_early_abort**: on-the-fly attractor solving
  (``solving="onthefly"``) vs full exploration plus the post-hoc
  fixpoint (``solving="offline"``) on games that are losing at the
  given bound — the early abort must visit strictly fewer positions.
* **case_studies**: end-to-end verdicts (and engine-work counters) on the
  paper's three case studies, asserted identical to the committed
  seed-goldens in ``benchmarks/baseline_synthesis.json``.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_synthesis.py         # full run
    PYTHONPATH=src python benchmarks/bench_synthesis.py --quick # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import SpecCC, SpecCCConfig, TranslationOptions  # noqa: E402
from repro.casestudies import (  # noqa: E402
    MODE_SWITCHING_REQUIREMENTS,
    TABLE_INSTANCES,
    application_requirements,
    component_requirements,
    robot_requirements,
)
from repro.logic import parse  # noqa: E402
from repro.sat import CDCLSolver, CNF  # noqa: E402
from repro.synthesis import (  # noqa: E402
    IncrementalBoundedSynthesizer,
    SynthesisLimits,
    solve_safety_game,
    synthesis_stats,
)

SCHEMA = "repro-bench-synthesis/2"
BASELINE_SCHEMA = "repro-bench-synthesis-baseline/2"
BASELINE_PATH = REPO_ROOT / "benchmarks" / "baseline_synthesis.json"


def _config(**limit_overrides) -> SpecCCConfig:
    limits = SynthesisLimits(**limit_overrides) if limit_overrides else SynthesisLimits()
    return SpecCCConfig(
        translation=TranslationOptions(next_as_x=False), limits=limits
    )


# ----------------------------------------------------------- CNF instances
def random_3sat(seed: int, num_vars: int, num_clauses: int) -> CNF:
    rng = random.Random(seed)
    cnf = CNF()
    for _ in range(num_clauses):
        clause = []
        while len(clause) < 3:
            var = rng.randint(1, num_vars)
            lit = var if rng.random() < 0.5 else -var
            if abs(lit) not in {abs(l) for l in clause}:
                clause.append(lit)
        cnf.add(clause)
    cnf.num_vars = max(cnf.num_vars, num_vars)
    return cnf


pigeonhole = CNF.pigeonhole


def exactly_one_grid(rows: int, cols: int) -> CNF:
    """Latin-square-flavoured exactly-one rows/columns: SAT but propagation
    heavy — the shape the bounded-synthesis transition encodings produce."""
    cnf = CNF()

    def var(r: int, c: int) -> int:
        return r * cols + c + 1

    for r in range(rows):
        cnf.add_exactly_one([var(r, c) for c in range(cols)])
    for c in range(cols):
        cnf.add_exactly_one([var(r, c) for r in range(rows)])
    return cnf


def propagation_instances(quick: bool) -> List[Tuple[str, CNF]]:
    if quick:
        return [
            ("random3sat-40v-170c", random_3sat(1, 40, 170)),
            ("pigeonhole-6x5", pigeonhole(6, 5)),
            ("exactly-one-7x7", exactly_one_grid(7, 7)),
        ]
    return [
        ("random3sat-60v-255c", random_3sat(1, 60, 255)),
        ("random3sat-60v-255c-s2", random_3sat(2, 60, 255)),
        ("random3sat-80v-340c", random_3sat(3, 80, 340)),
        ("pigeonhole-7x6", pigeonhole(7, 6)),
        ("pigeonhole-8x7", pigeonhole(8, 7)),
        ("exactly-one-9x9", exactly_one_grid(9, 9)),
    ]


def bench_propagation(quick: bool) -> Dict[str, object]:
    instances: Dict[str, object] = {}
    min_ratio = None
    for name, cnf in propagation_instances(quick):
        row: Dict[str, object] = {}
        verdicts = {}
        for mode in ("watch", "scan"):
            solver = CDCLSolver(cnf, propagation=mode)
            start = time.perf_counter()
            result = solver.solve()
            seconds = time.perf_counter() - start
            stats = solver.stats()
            verdicts[mode] = bool(result)
            row[mode] = {
                "satisfiable": bool(result),
                "seconds": round(seconds, 4),
                "propagations": stats["propagations"],
                "clause_visits": stats["clause_visits"],
                "conflicts": stats["conflicts"],
                "restarts": stats["restarts"],
                "visits_per_propagation": round(
                    stats["clause_visits"] / max(1, stats["propagations"]), 3
                ),
            }
        assert verdicts["watch"] == verdicts["scan"], name
        ratio = (
            row["scan"]["visits_per_propagation"]
            / max(1e-9, row["watch"]["visits_per_propagation"])
        )
        row["visit_ratio"] = round(ratio, 2)
        min_ratio = ratio if min_ratio is None else min(min_ratio, ratio)
        instances[name] = row
    return {
        "instances": instances,
        "min_visit_ratio": round(min_ratio, 2),
        "watched_wins": min_ratio >= 2.0,
    }


# ------------------------------------------------------------- safety game
EQUIVALENCE_SPECS = [
    ("request-grant", "G (r -> X g)", ["r"], ["g"]),
    ("progress", "G (r -> F g) && G (c -> !g)", ["r", "c"], ["g"]),
    ("clairvoyant", "G (g <-> X X i)", ["i"], ["g"]),
    ("toggle", "G F g && G (g -> X !g)", [], ["g"]),
    ("unsat", "F g && G !g", [], ["g"]),
]


def bench_safety_game(quick: bool) -> Dict[str, object]:
    # Wide-output sweep: one real output plus N don't-cares.  Partial
    # exploration must do identical work for every N; the concrete
    # reference pays 2^N.
    widths = [0, 2, 4] if quick else [0, 2, 4, 6, 8]
    rows = []
    partial_letter_counts = set()
    for extra in widths:
        outputs = ["g"] + [f"o{k}" for k in range(extra)]
        start = time.perf_counter()
        partial = solve_safety_game(parse("G (r -> X g)"), ["r"], outputs, bound=2)
        partial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        concrete = solve_safety_game(
            parse("G (r -> X g)"), ["r"], outputs, bound=2, exploration="concrete"
        )
        concrete_seconds = time.perf_counter() - start
        assert partial.realizable and concrete.realizable
        assert partial.machine.transitions == concrete.machine.transitions
        partial_letter_counts.add(partial.stats["letters_enumerated"])
        rows.append(
            {
                "extra_outputs": extra,
                "partial_letters": partial.stats["letters_enumerated"],
                "concrete_letters": concrete.stats["letters_enumerated"],
                "partial_seconds": round(partial_seconds, 5),
                "concrete_seconds": round(concrete_seconds, 5),
                "positions": partial.positions_explored,
            }
        )

    equivalent = True
    for name, text, inputs, outputs in EQUIVALENCE_SPECS:
        for bound in (1, 2):
            partial = solve_safety_game(parse(text), inputs, outputs, bound=bound)
            concrete = solve_safety_game(
                parse(text), inputs, outputs, bound=bound, exploration="concrete"
            )
            same = (
                partial.realizable == concrete.realizable
                and partial.positions_explored == concrete.positions_explored
                and (
                    not partial.realizable
                    or partial.machine.transitions == concrete.machine.transitions
                )
            )
            equivalent = equivalent and same

    return {
        "wide_output_scaling": rows,
        "partial_independent_of_outputs": len(partial_letter_counts) == 1,
        "strategies_equivalent": equivalent,
    }


# ------------------------------------------------------- incremental bounds
# Bound-ladder portfolio: realizable specs that become winnable partway up
# the ladder (so the incremental solver re-solves a grown encoding) plus an
# unrealizable spec (UNSAT at every bound, the conflict-heavy case where
# carried learnt clauses pay the most).
LADDER_SPECS = [
    ("xor-next", "G (X g <-> (a || b))", ["a", "b"], ["g"]),
    ("and-next", "G (X g <-> (a && b))", ["a", "b"], ["g"]),
    ("delayed-grant", "G (r -> X (g || X g)) && G (!r -> X !g)", ["r"], ["g"]),
    ("spaced-grant", "G (r -> (g || X g || X X g)) && G !(g && X g)", ["r"], ["g"]),
    (
        "arbiter",
        "G (r1 -> F g1) && G (r2 -> F g2) && G !(g1 && g2)",
        ["r1", "r2"],
        ["g1", "g2"],
    ),
    ("unsat", "F g && G !g", [], ["g"]),
]
LADDER_MAX_STATES = 4
QUICK_LADDER_NAMES = {"xor-next", "delayed-grant", "unsat"}


def ladder_specs(quick: bool):
    if quick:
        return [row for row in LADDER_SPECS if row[0] in QUICK_LADDER_NAMES]
    return LADDER_SPECS


def bench_incremental_bounds(quick: bool) -> Dict[str, object]:
    specs: Dict[str, object] = {}
    aggregate = {"incremental": 0, "fresh": 0}
    machines_identical = True
    for name, text, inputs, outputs in ladder_specs(quick):
        spec = parse(text)
        synths = {
            encoding: IncrementalBoundedSynthesizer.for_system(
                spec, inputs, outputs, encoding=encoding
            )
            for encoding in ("incremental", "fresh")
        }
        conflicts = {"incremental": 0, "fresh": 0}
        seconds = {"incremental": 0.0, "fresh": 0.0}
        verdicts: List[bool] = []
        for num_states in range(1, LADDER_MAX_STATES + 1):
            results = {}
            for encoding, synth in synths.items():
                start = time.perf_counter()
                results[encoding] = synth.solve(num_states=num_states)
                seconds[encoding] += time.perf_counter() - start
                conflicts[encoding] += results[encoding].solver_stats["conflicts"]
            assert (
                results["incremental"].realizable == results["fresh"].realizable
            ), (name, num_states)
            verdicts.append(results["incremental"].realizable)
            if results["incremental"].realizable:
                inc, fresh = results["incremental"].machine, results["fresh"].machine
                same = (
                    inc.transitions == fresh.transitions
                    and inc.describe() == fresh.describe()
                )
                assert same, (name, num_states)
                machines_identical = machines_identical and same
        for encoding in aggregate:
            aggregate[encoding] += conflicts[encoding]
        ratio = conflicts["fresh"] / max(1, conflicts["incremental"])
        specs[name] = {
            "verdicts": verdicts,
            "incremental_conflicts": conflicts["incremental"],
            "fresh_conflicts": conflicts["fresh"],
            "conflict_ratio": round(ratio, 2),
            "incremental_seconds": round(seconds["incremental"], 4),
            "fresh_seconds": round(seconds["fresh"], 4),
        }
    aggregate_ratio = aggregate["fresh"] / max(1, aggregate["incremental"])
    return {
        "max_states": LADDER_MAX_STATES,
        "specs": specs,
        "aggregate_incremental_conflicts": aggregate["incremental"],
        "aggregate_fresh_conflicts": aggregate["fresh"],
        "conflict_ratio": round(aggregate_ratio, 2),
        "incremental_wins": aggregate_ratio >= 2.0,
        "machines_identical": machines_identical,
    }


# ------------------------------------------------------------- early abort
# Games that are losing at the stated bound: the on-the-fly attractor must
# abort before expanding the whole arena, so it explores strictly fewer
# positions than the offline reference (which always builds the full graph).
EARLY_ABORT_SPECS = [
    ("delayed-obligation-b1", "G (r -> X X X X b)", ["r"], ["b"], 1),
    ("delayed-obligation-b3", "G (r -> X X X X b)", ["r"], ["b"], 3),
    (
        "progress-conflict-b3",
        "G (r -> F g) && G (c -> !g)",
        ["r", "c"],
        ["g"],
        3,
    ),
    (
        "chain-echo-b2",
        "G (a -> X (b2 && X (c2 -> X g))) && G (g <-> X X a)",
        ["a", "c2"],
        ["b2", "g"],
        2,
    ),
    (
        "arbiter-starved-b2",
        "G (r1 -> F g1) && G (r2 -> F g2) && G !(g1 && g2) "
        "&& G (r1 && r2 -> X !g1)",
        ["r1", "r2"],
        ["g1", "g2"],
        2,
    ),
]


def bench_game_early_abort(quick: bool) -> Dict[str, object]:
    rows = []
    all_fewer = True
    for name, text, inputs, outputs, bound in (
        EARLY_ABORT_SPECS[:2] if quick else EARLY_ABORT_SPECS
    ):
        spec = parse(text)
        results = {}
        seconds = {}
        for solving in ("onthefly", "offline"):
            start = time.perf_counter()
            results[solving] = solve_safety_game(
                spec, inputs, outputs, bound=bound, solving=solving
            )
            seconds[solving] = time.perf_counter() - start
        onthefly, offline = results["onthefly"], results["offline"]
        assert onthefly.realizable == offline.realizable, name
        assert not onthefly.realizable, (name, "expected losing at this bound")
        fewer = onthefly.positions_explored < offline.positions_explored
        all_fewer = all_fewer and fewer
        rows.append(
            {
                "spec": name,
                "bound": bound,
                "onthefly_positions": onthefly.positions_explored,
                "offline_positions": offline.positions_explored,
                "onthefly_letters": onthefly.stats["letters_enumerated"],
                "offline_letters": offline.stats["letters_enumerated"],
                "positions_pruned": onthefly.stats["positions_pruned"],
                "onthefly_seconds": round(seconds["onthefly"], 5),
                "offline_seconds": round(seconds["offline"], 5),
                "fewer_positions": fewer,
            }
        )
    return {"games": rows, "early_abort_wins": all_fewer}


# ------------------------------------------------------------ case studies
def case_study_workloads(quick: bool) -> List[Tuple[str, List[Tuple[str, str]]]]:
    workloads = [("cara-mode-switching", list(MODE_SWITCHING_REQUIREMENTS))]
    components = sorted(component_requirements().items())
    # All five TELEPROMISE applications always run: applications 4 and 5
    # escape the obligation certificate, so they are what keeps the
    # exact engines (and their work counters) exercised end-to-end.
    applications = sorted(application_requirements().items())
    if quick:
        components = components[:2]
    workloads += [(f"cara-component-{row}", reqs) for row, reqs in components]
    workloads += [(f"telepromise-{row}", reqs) for row, reqs in applications]
    for row, (robots, rooms) in sorted(TABLE_INSTANCES.items()):
        workloads.append(
            (f"robot-{row}-{robots}x{rooms}", robot_requirements(robots, rooms))
        )
    return workloads


def bench_case_studies(quick: bool) -> Dict[str, object]:
    tool = SpecCC(_config())
    workloads: Dict[str, object] = {}
    for name, requirements in case_study_workloads(quick):
        SpecCC.clear_caches()
        start = time.perf_counter()
        report = tool.check(requirements)
        seconds = time.perf_counter() - start
        stats = synthesis_stats()
        workloads[name] = {
            "verdict": report.verdict.value,
            "seconds": round(seconds, 3),
            "game_solves": stats["game_solves"],
            "game_positions": stats["game_positions"],
            "game_letters": stats["game_letters"],
            "sat_solves": stats["sat_solves"],
            "sat_propagations": stats["sat_propagations"],
            "sat_clause_visits": stats["sat_clause_visits"],
        }
    # The obligation certificate short-circuits most rows; the golden
    # verdict check is only meaningful if at least some workloads actually
    # drove the optimised engines.
    engines_exercised = any(
        row["game_solves"] > 0 or row["sat_solves"] > 0
        for row in workloads.values()
    )
    return {"workloads": workloads, "engines_exercised": engines_exercised}


def compare_to_baseline(
    case_studies: Dict[str, object], incremental_bounds: Dict[str, object]
) -> Dict[str, object]:
    if not BASELINE_PATH.exists():
        return {
            "available": False,
            "verdicts_match_baseline": False,
            "ladders_match_baseline": False,
        }
    baseline = json.loads(BASELINE_PATH.read_text())
    verdicts = baseline["verdicts"]
    workloads = case_studies["workloads"]
    mismatches = {
        name: {"got": data["verdict"], "expected": verdicts[name]}
        for name, data in workloads.items()
        if name in verdicts and data["verdict"] != verdicts[name]
    }
    missing = [name for name in workloads if name not in verdicts]
    ladders = baseline.get("ladders", {})
    ladder_mismatches = {
        name: {"got": data["verdicts"], "expected": ladders[name]}
        for name, data in incremental_bounds["specs"].items()
        if name in ladders and data["verdicts"] != ladders[name]
    }
    ladder_missing = [
        name for name in incremental_bounds["specs"] if name not in ladders
    ]
    return {
        "available": True,
        "verdicts_match_baseline": not mismatches and not missing,
        "mismatches": mismatches,
        "unknown_to_baseline": missing,
        "ladders_match_baseline": not ladder_mismatches and not ladder_missing,
        "ladder_mismatches": ladder_mismatches,
        "ladders_unknown_to_baseline": ladder_missing,
    }


def build_report(quick: bool) -> Dict:
    case_studies = bench_case_studies(quick)
    incremental_bounds = bench_incremental_bounds(quick)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "propagation": bench_propagation(quick),
        "safety_game": bench_safety_game(quick),
        "incremental_bounds": incremental_bounds,
        "game_early_abort": bench_game_early_abort(quick),
        "case_studies": case_studies,
        "baseline": compare_to_baseline(case_studies, incremental_bounds),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_synthesis.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced instance sizes for CI smoke runs",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"(re)write the verdict goldens at {BASELINE_PATH}",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    if args.write_baseline:
        baseline = {
            "schema": BASELINE_SCHEMA,
            "verdicts": {
                name: data["verdict"]
                for name, data in report["case_studies"]["workloads"].items()
            },
            "ladders": {
                name: data["verdicts"]
                for name, data in report["incremental_bounds"]["specs"].items()
            },
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n"
        )
        report["baseline"] = compare_to_baseline(
            report["case_studies"], report["incremental_bounds"]
        )
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    propagation = report["propagation"]
    print(
        f"propagation: min visit ratio {propagation['min_visit_ratio']}x "
        f"(watched wins: {propagation['watched_wins']})"
    )
    for name, row in sorted(propagation["instances"].items()):
        print(
            f"  {name:24} watch {row['watch']['visits_per_propagation']:>8} "
            f"scan {row['scan']['visits_per_propagation']:>8} "
            f"ratio {row['visit_ratio']:>6}x"
        )
    game = report["safety_game"]
    print(
        f"safety game: partial independent of don't-care outputs: "
        f"{game['partial_independent_of_outputs']}, strategies equivalent: "
        f"{game['strategies_equivalent']}"
    )
    for row in game["wide_output_scaling"]:
        print(
            f"  +{row['extra_outputs']} outputs: partial {row['partial_letters']:>6} letters "
            f"concrete {row['concrete_letters']:>8} letters"
        )
    bounds = report["incremental_bounds"]
    print(
        f"incremental bounds: {bounds['aggregate_fresh_conflicts']} fresh vs "
        f"{bounds['aggregate_incremental_conflicts']} incremental conflicts "
        f"({bounds['conflict_ratio']}x, incremental wins: "
        f"{bounds['incremental_wins']}, machines identical: "
        f"{bounds['machines_identical']})"
    )
    for name, data in sorted(bounds["specs"].items()):
        print(
            f"  {name:24} incremental {data['incremental_conflicts']:>6} "
            f"fresh {data['fresh_conflicts']:>6} conflicts "
            f"ratio {data['conflict_ratio']:>6}x"
        )
    abort = report["game_early_abort"]
    print(f"game early abort: strictly fewer positions: {abort['early_abort_wins']}")
    for row in abort["games"]:
        print(
            f"  {row['spec']:24} onthefly {row['onthefly_positions']:>5} "
            f"offline {row['offline_positions']:>5} positions "
            f"(pruned {row['positions_pruned']})"
        )
    for name, data in sorted(report["case_studies"]["workloads"].items()):
        print(
            f"case {name:28} {data['verdict']:>12} {data['seconds']:>7.3f}s "
            f"(game positions {data['game_positions']}, sat propagations "
            f"{data['sat_propagations']})"
        )
    print(
        f"engines exercised: {report['case_studies']['engines_exercised']}, "
        f"verdicts match baseline: "
        f"{report['baseline']['verdicts_match_baseline']}, "
        f"ladders match baseline: "
        f"{report['baseline']['ladders_match_baseline']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
