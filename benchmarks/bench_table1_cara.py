"""Table I, CARA block: mode switching (row 0) + 13 component rows.

Paper reference (DATE'15 Table I):

    0      Working mode and switching    30  22  28  34s   consistent
    1      Pump Monitor                  20   9  14   2s   consistent
    2.1.1  BPM: cuff detector            14  13  12   1s   consistent
    ...    (see EXPERIMENTS.md for the full row list)
    3.2    (PA) Polling algorithm        56  12  20  11s   consistent

Every row is re-run end to end: structured English -> LTL (with semantic
reasoning and time abstraction) -> realizability.  Formula/input/output
counts are compared against the paper; all rows must come out consistent.
Absolute times differ (pure-Python engines vs the authors' Java G4LTL);
the verdicts and scales are the reproduced quantities.
"""

from __future__ import annotations

import time

import pytest

from repro.casestudies import component_requirements, mode_switching_requirements

from .conftest import HEADER, table_row

PAPER_ROWS = {
    "0 Working mode and switching": (30, 22, 28, 34),
    "1 Pump Monitor": (20, 9, 14, 2),
    "2.1.1 BPM: cuff detector": (14, 13, 12, 1),
    "2.1.2 BPM: AL detector": (15, 11, 14, 2),
    "2.1.3 BPM: pulse wave detector": (14, 9, 12, 1),
    "2.2.1 BPM: initial auto control": (16, 14, 15, 1),
    "2.2.2 BPM: first corroboration": (19, 11, 16, 29),
    "2.2.3 BPM: valid ctrl blood pressure": (13, 11, 10, 2),
    "2.2.4 BPM: cuff source handler": (11, 9, 10, 2),
    "2.2.5 BPM: arterial line blood pressure": (16, 9, 13, 1),
    "2.2.6 BPM: arterial line corroboration": (12, 8, 13, 1),
    "2.2.7 BPM: pulse wave handler": (20, 10, 21, 23),
    "3.1 (PA) Model ctrl algorithm": (9, 15, 11, 3),
    "3.2 (PA) Polling algorithm": (56, 12, 20, 11),
}

ROW_IDS = {
    "1": "1 Pump Monitor",
    "2.1.1": "2.1.1 BPM: cuff detector",
    "2.1.2": "2.1.2 BPM: AL detector",
    "2.1.3": "2.1.3 BPM: pulse wave detector",
    "2.2.1": "2.2.1 BPM: initial auto control",
    "2.2.2": "2.2.2 BPM: first corroboration",
    "2.2.3": "2.2.3 BPM: valid ctrl blood pressure",
    "2.2.4": "2.2.4 BPM: cuff source handler",
    "2.2.5": "2.2.5 BPM: arterial line blood pressure",
    "2.2.6": "2.2.6 BPM: arterial line corroboration",
    "2.2.7": "2.2.7 BPM: pulse wave handler",
    "3.1": "3.1 (PA) Model ctrl algorithm",
    "3.2": "3.2 (PA) Polling algorithm",
}


def test_table1_cara_rows(paper_tool, capsys):
    rows = [("0 Working mode and switching", mode_switching_requirements())]
    components = component_requirements()
    rows.extend((ROW_IDS[row], reqs) for row, reqs in components.items())

    lines = [HEADER]
    for name, requirements in rows:
        start = time.perf_counter()
        report = paper_tool.check(requirements)
        seconds = time.perf_counter() - start
        spec = report.translation
        lines.append(table_row(name, spec, report, seconds))
        paper_formulas, paper_in, paper_out, paper_seconds = PAPER_ROWS[name]
        assert report.consistent, name
        assert len(spec.requirements) == paper_formulas, name
        if name != "0 Working mode and switching":
            # Component scales are exact; row 0's variable counts depend on
            # proposition naming and deviate slightly (see EXPERIMENTS.md).
            assert spec.num_inputs == paper_in, name
            assert spec.num_outputs == paper_out, name
    with capsys.disabled():
        print("\nTable I — CARA block (paper: all consistent)")
        print("\n".join(lines))


def test_cara_mode_switching_benchmark(paper_tool, benchmark):
    requirements = mode_switching_requirements()
    report = benchmark(paper_tool.check, requirements)
    assert report.consistent
