"""Service-layer benchmark runner — emits ``BENCH_service.json``.

Measures the three workloads the :mod:`repro.service` subsystem exists
for:

* **edit_loop**: the paper's maintenance scenario — an N-requirement
  document, k single-sentence edits, re-checked after every edit.
  *incremental* uses one long-lived :class:`repro.SpecSession` (only the
  edited component is re-translated/re-analysed); *fresh* clears every
  cache and runs a new ``SpecCC.check`` per edit, which is what the
  one-shot CLI amounted to before this subsystem existed.
* **batch**: throughput in documents/second over the generated Table-I
  component specifications: the thread backend at 1/4/8 workers, the
  pre-pool ``process-fresh`` backend (one cold tool per task — the
  regression this file exists to expose), and the persistent sharded
  :class:`repro.service.WorkerPool`.  Pool startup seconds are reported
  on their own line, *cold* is the first pass over the corpus and
  *steady* re-runs the corpus over warm worker caches — the number that
  matters for a long-lived service.  Every backend's canonical reports
  are byte-compared against the sequential ones.
* **fault_recovery**: the cost of staying correct under failure — the
  same 13-document pass clean, with one injected worker crash (supervised
  respawn + retry), and fully degraded to the in-process fallback after
  the circuit breaker trips; every pass byte-compared against the
  sequential reference.
* **async_serve**: the ``serve --async`` front end multiplexing many
  concurrent client sessions over one event loop, with per-session
  responses checked against dedicated sequential serve runs.
* **recovery**: what restarting with a write-ahead journal buys — the
  13-document corpus served through journaled durable sessions (each
  document its own token, a few maintenance edits of history, snapshot
  compaction on), then "crashed" (all in-memory state and caches
  discarded) and brought back two ways: ``JournalStore.recover`` replay,
  and a cold client re-driving its full edit history from scratch.
  Both are byte-compared against the pre-crash acknowledged reports;
  replay must win, because compaction collapsed each journal's history
  to a snapshot plus its tail while the cold path pays for every
  intermediate check again.
* **remote**: the same 13-document corpus dispatched to real ``python -m
  repro worker`` subprocesses over loopback TCP, at 1 and 2 workers,
  with a deterministic 15 ms per-task service delay injected through the
  standard fault machinery (``kind="delay"``).  The delay is the point:
  what the remote tier buys is *overlap* of per-task service latency
  across workers, and modelling that latency explicitly makes the
  steady-state number meaningful on any host — without it, a one-core
  container degenerates to a pure CPU race that no amount of
  distribution can win.  The acceptance bar is 2 workers >= 1.6x the
  1-worker steady docs/sec, byte-identical to the sequential reference
  throughout (the delay fault sleeps; it never touches results).

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_service.py           # -> BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # smoke run (CI)
"""

from __future__ import annotations

import argparse
import io
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import SpecCC, SpecCCConfig, SpecSession, TranslationOptions  # noqa: E402
from repro.casestudies import component_requirements  # noqa: E402
from repro.service.batch import BatchChecker  # noqa: E402
from repro.service.pool import WorkerPool  # noqa: E402
from repro.service.server import serve, serve_async  # noqa: E402

SCHEMA = "repro-bench-service/5"


def _config() -> SpecCCConfig:
    return SpecCCConfig(translation=TranslationOptions(next_as_x=False))


# --------------------------------------------------------------- edit loop
def edit_workload(size: int) -> List[Tuple[str, str]]:
    """*size* single-requirement components over disjoint variable pools."""
    return [
        (
            f"R{index}",
            f"If the sensor {index} is active, the device {index} is started.",
        )
        for index in range(1, size + 1)
    ]


def edit_sequence(size: int, edits: int) -> List[Tuple[str, str]]:
    """k single-sentence edits cycling through the document."""
    sequence = []
    for edit in range(edits):
        index = (edit * 7) % size + 1  # stride so edits spread over the doc
        adjective = "normal" if edit % 2 == 0 else "active"
        sequence.append(
            (
                f"R{index}",
                f"If the sensor {index} is {adjective}, "
                f"the device {index} is started.",
            )
        )
    return sequence


def bench_edit_loop(quick: bool) -> Dict[str, object]:
    size = 12 if quick else 40
    edits = 4 if quick else 12
    requirements = edit_workload(size)
    sequence = edit_sequence(size, edits)

    # Incremental: one session, caches warm across the whole loop.
    SpecCC.clear_caches()
    session = SpecSession(SpecCC(_config()))
    for identifier, sentence in requirements:
        session.add(identifier, sentence)
    first = session.check()
    incremental_verdicts = []
    reanalyzed_per_edit = []
    start = time.perf_counter()
    for identifier, sentence in sequence:
        session.update(identifier, sentence)
        report = session.check()
        incremental_verdicts.append(report.verdict.value)
        reanalyzed_per_edit.append(len(report.delta.reanalyzed))
    incremental_seconds = time.perf_counter() - start

    # Fresh: what re-running the one-shot pipeline per edit costs.  Caches
    # are cleared per edit — a fresh process has nothing warmed.
    state = dict(requirements)
    fresh_verdicts = []
    start = time.perf_counter()
    for identifier, sentence in sequence:
        state[identifier] = sentence
        SpecCC.clear_caches()
        tool = SpecCC(_config())
        report = tool.check(list(state.items()))
        fresh_verdicts.append(report.verdict.value)
    fresh_seconds = time.perf_counter() - start

    return {
        "requirements": size,
        "edits": edits,
        "first_check_seconds": first.seconds,
        "incremental_seconds": incremental_seconds,
        "fresh_seconds": fresh_seconds,
        "speedup": (
            round(fresh_seconds / incremental_seconds, 2)
            if incremental_seconds > 0
            else None
        ),
        "max_components_reanalyzed_per_edit": max(reanalyzed_per_edit),
        "verdicts_match": incremental_verdicts == fresh_verdicts,
        "verdicts": incremental_verdicts,
    }


# -------------------------------------------------------------------- batch
def batch_documents(quick: bool) -> List[Tuple[str, List[Tuple[str, str]]]]:
    rows = sorted(component_requirements().items())
    if quick:
        rows = rows[:4]
    return [(f"cara-{row}", list(reqs)) for row, reqs in rows]


def _rate(count: int, seconds: float):
    return round(count / seconds, 2) if seconds else None


def bench_batch(quick: bool) -> Dict[str, object]:
    documents = batch_documents(quick)
    worker_counts = (1, 4) if quick else (1, 4, 8)
    results: Dict[str, object] = {"documents": len(documents), "thread": {}}

    canonical = None
    deterministic = True
    for workers in worker_counts:
        SpecCC.clear_caches()
        checker = BatchChecker(config=_config(), workers=workers)
        start = time.perf_counter()
        batch = checker.check_documents(documents)
        seconds = time.perf_counter() - start
        payload = [json.dumps(result.data, sort_keys=True) for result in batch]
        if canonical is None:
            canonical = payload
        deterministic = deterministic and payload == canonical
        results["thread"][str(workers)] = {
            "seconds": seconds,
            "docs_per_sec": _rate(len(documents), seconds),
        }
    thread1_rate = results["thread"]["1"]["docs_per_sec"]

    # The pre-pool reference: every task rebuilds the tool in a fresh
    # process, so cold start dominates — reported separately so it can
    # never again hide behind a single docs/sec number.
    try:
        SpecCC.clear_caches()
        checker = BatchChecker(config=_config(), workers=4, backend="process-fresh")
        start = time.perf_counter()
        batch = checker.check_documents(documents)
        seconds = time.perf_counter() - start
        payload = [json.dumps(result.data, sort_keys=True) for result in batch]
        deterministic = deterministic and payload == canonical
        results["process_fresh"] = {
            "4": {
                "seconds": seconds,
                "docs_per_sec": _rate(len(documents), seconds),
            }
        }
    except Exception as error:  # pragma: no cover - sandboxed CI runners
        results["process_fresh"] = {"error": str(error)}

    # The persistent pool: startup charged once on its own line; cold =
    # first pass over the corpus; steady = the same corpus re-checked
    # over warm worker caches (what a long-lived service actually sees).
    # No error swallowing here: this scenario is the PR's acceptance
    # criterion and CI hard-asserts it, so a broken pool must fail loudly.
    steady_passes = 2 if quick else 3
    SpecCC.clear_caches()  # forked workers must not inherit warm caches
    with WorkerPool(config=_config(), shards=4) as pool:
        startup = pool.ensure_started()

        start = time.perf_counter()
        tasks = pool.check_documents(documents)
        cold_seconds = time.perf_counter() - start
        payload = [json.dumps(task.data, sort_keys=True) for task in tasks]
        deterministic = deterministic and payload == canonical

        steady_seconds = 0.0
        for _ in range(steady_passes):
            start = time.perf_counter()
            tasks = pool.check_documents(documents)
            steady_seconds = time.perf_counter() - start  # last pass
            payload = [json.dumps(task.data, sort_keys=True) for task in tasks]
            deterministic = deterministic and payload == canonical

        steady_rate = _rate(len(documents), steady_seconds)
        results["pool"] = {
            "4": {
                "startup_seconds": startup,
                "cold": {
                    "seconds": cold_seconds,
                    "docs_per_sec": _rate(len(documents), cold_seconds),
                },
                "steady": {
                    "seconds": steady_seconds,
                    "docs_per_sec": steady_rate,
                    "passes": steady_passes,
                },
                "steady_speedup_vs_thread1": (
                    round(steady_rate / thread1_rate, 2)
                    if steady_rate and thread1_rate
                    else None
                ),
                "stats": pool.stats(),
            }
        }

    results["deterministic"] = deterministic
    return results


# --------------------------------------------------------- fault recovery
def fault_documents() -> List[Tuple[str, str]]:
    """The 13-document soak corpus (same size as the CI fault step):
    mostly consistent one-liners with a few contradictions mixed in."""
    documents = []
    for index in range(1, 14):
        if index % 4 == 0:
            text = (
                f"The pump {index} is started.\n"
                f"The pump {index} is not started.\n"
            )
        else:
            text = f"If the sensor {index} is active, the device {index} is started.\n"
        documents.append((f"doc{index}", text))
    return documents


def bench_fault_recovery(quick: bool) -> Dict[str, object]:
    """What supervised recovery costs: the same 13-document pass clean,
    with one injected worker crash (respawn + retry), and with the pool
    fully degraded to the in-process fallback path.  Every pass must stay
    byte-identical to the sequential reference."""
    from repro.service.faults import FaultPlan, FaultSpec
    from repro.service.supervision import SupervisionConfig

    documents = fault_documents()
    SpecCC.clear_caches()
    baseline = BatchChecker(config=_config(), workers=1).check_documents(documents)
    canonical = [json.dumps(result.data, sort_keys=True) for result in baseline]

    def run_pool(fault_plan, supervision):
        SpecCC.clear_caches()
        with WorkerPool(
            config=_config(),
            shards=2,
            supervision=supervision,
            fault_plan=fault_plan,
        ) as pool:
            pool.ensure_started()
            start = time.perf_counter()
            tasks = pool.check_documents(documents)
            seconds = time.perf_counter() - start
            payload = [json.dumps(task.data, sort_keys=True) for task in tasks]
            return seconds, payload == canonical, pool.stats()["supervision"]

    fast_backoff = dict(backoff_base=0.01, backoff_cap=0.05, seed=7)

    clean_seconds, clean_match, _ = run_pool(
        FaultPlan([]), SupervisionConfig(**fast_backoff)
    )

    # One worker crash mid-pass: the supervisor respawns the shard and
    # retries the lost document.
    crash_seconds, crash_match, crash_stats = run_pool(
        FaultPlan([FaultSpec(kind="crash", shard=0, task=2, max_spawn=0)], seed=7),
        SupervisionConfig(**fast_backoff),
    )

    # Degraded mode: the first task of every worker crashes and every
    # respawn dies during init, so the circuit breaker trips and the whole
    # corpus runs on the in-process fallback path.
    degraded_seconds, degraded_match, degraded_stats = run_pool(
        FaultPlan(
            [
                FaultSpec(kind="crash", task=0, times=-1),
                FaultSpec(kind="crash_init", min_spawn=1, times=-1),
            ],
            seed=7,
        ),
        SupervisionConfig(max_respawn_failures=1, **fast_backoff),
    )

    return {
        "documents": len(documents),
        "clean": {
            "seconds": clean_seconds,
            "docs_per_sec": _rate(len(documents), clean_seconds),
        },
        "one_crash": {
            "seconds": crash_seconds,
            "docs_per_sec": _rate(len(documents), crash_seconds),
            "added_latency_seconds": round(crash_seconds - clean_seconds, 4),
            "worker_deaths": crash_stats["worker_deaths"],
            "restarts": crash_stats["restarts"],
            "retries": crash_stats["retries"],
        },
        "degraded": {
            "seconds": degraded_seconds,
            "docs_per_sec": _rate(len(documents), degraded_seconds),
            "degraded_tasks": degraded_stats["degraded_tasks"],
            "circuit_open": degraded_stats["circuit_open"],
        },
        "byte_identical": clean_match and crash_match and degraded_match,
    }


# ---------------------------------------------------------------- recovery
def bench_recovery(quick: bool) -> Dict[str, object]:
    """Journal replay vs cold re-analysis after a crash.

    Phase 1 serves the 13-document corpus through journaled durable
    sessions (one token per document; ``load`` + check, then a few
    edit-and-recheck rounds of history; ``fsync="always"`` so the serve
    timing includes honest durability cost; compaction on).  Phase 2
    discards every cache and in-memory session — the crash — and times
    :meth:`JournalStore.recover` replaying every journal.  Phase 3 is
    the journal-less alternative: a cold server re-driven through each
    document's full edit history.  All three must acknowledge
    byte-identical final reports (``timings=False`` convention).
    """
    import shutil
    import tempfile

    from repro.service.journal import JournalStore
    from repro.service.reportjson import report_to_dict
    from repro.service.server import _Server

    documents = fault_documents()
    edit_rounds = 2 if quick else 4

    def history(index: int, text: str) -> List[dict]:
        """One client's requests for document *index*: load + check, then
        the paper's maintenance loop — the same requirement updated and
        re-checked every round.  Each round's sentence is unique (the
        subject carries the round number), so every intermediate version
        costs a real component analysis: exactly the work a snapshot
        makes the replay path skip and the cold path pay again."""
        requests: List[dict] = [
            {"op": "load", "document": text},
            {"op": "check", "timings": False},
        ]
        for round_ in range(1, edit_rounds + 1):
            requests.append(
                {
                    "op": "add" if round_ == 1 else "update",
                    "id": "E0",
                    "text": (
                        f"If the relay {index * 10 + round_} is closed, "
                        f"the alarm {index} is sounded."
                    ),
                }
            )
            requests.append({"op": "check", "timings": False})
        return requests

    def final_report(session) -> str:
        return json.dumps(
            report_to_dict(session.last_report.report, timings=False),
            sort_keys=True,
        )

    workdir = Path(tempfile.mkdtemp(prefix="bench-journal-"))
    try:
        # Phase 1: journaled serving (the durability tax is in this number).
        SpecCC.clear_caches()
        # compact_every lands the (single) compaction exactly on each
        # history's final check, so every journal collapses to one
        # snapshot: replay re-analyses only each document's *final*
        # state, never the superseded intermediate versions.
        store = JournalStore(
            workdir, fsync="always", compact_every=2 * edit_rounds + 2
        )
        tool = SpecCC(_config())
        reference: Dict[str, str] = {}
        start = time.perf_counter()
        for index, (name, text) in enumerate(documents, start=1):
            server = _Server(tool, journal_store=store)
            server.handle({"op": "attach", "token": name})
            for rid, request in enumerate(history(index, text), start=1):
                last = server.handle(dict(request, rid=rid))
            reference[name] = json.dumps(last["report"], sort_keys=True)
        serve_seconds = time.perf_counter() - start
        serve_counters = store.counters()
        store.close()

        # Phase 2: the crash, then recovery by journal replay.
        SpecCC.clear_caches()
        recovery_store = JournalStore(workdir, fsync="always")
        start = time.perf_counter()
        recovered = recovery_store.recover(SpecCC(_config()))
        recovery_seconds = time.perf_counter() - start
        replay_match = len(recovered) == len(documents) and all(
            final_report(durable.session) == reference[token]
            for token, durable in recovered.items()
        )
        recovery_counters = recovery_store.counters()
        recovery_store.close()

        # Phase 3: the crash again, recovered the only way a journal-less
        # service can — every client re-drives its whole edit history.
        SpecCC.clear_caches()
        cold_tool = SpecCC(_config())
        cold_match = True
        start = time.perf_counter()
        for index, (name, text) in enumerate(documents, start=1):
            server = _Server(cold_tool)
            for request in history(index, text):
                last = server.handle(dict(request))
            cold_match = cold_match and (
                json.dumps(last["report"], sort_keys=True) == reference[name]
            )
        cold_seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "documents": len(documents),
        "edit_rounds": edit_rounds,
        "serve": {
            "seconds": serve_seconds,
            "fsync": "always",
            "appends": serve_counters["appends"],
            "fsyncs": serve_counters["fsyncs"],
            "compactions": serve_counters["compactions"],
        },
        "replay": {
            "seconds": recovery_seconds,
            "recovered_sessions": recovery_counters["recovered_sessions"],
            "replayed_records": recovery_counters["replayed_records"],
            "truncated_tails": recovery_counters["truncated_tails"],
        },
        "cold": {"seconds": cold_seconds},
        "speedup": (
            round(cold_seconds / recovery_seconds, 2)
            if recovery_seconds > 0
            else None
        ),
        "byte_identical": replay_match and cold_match,
    }


# ------------------------------------------------------------------ remote
#: Deterministic per-task service delay injected into every remote
#: worker (``kind="delay"``, every shard, every task).  The remote tier
#: exists to overlap per-task service latency across workers; modelling
#: that latency explicitly keeps the 1-vs-2-worker comparison meaningful
#: on any host, including single-core containers where the undelayed
#: workload degenerates to a pure CPU race no distribution can win.
REMOTE_SERVICE_DELAY = 0.015


def bench_remote(quick: bool) -> Dict[str, object]:
    """The worker pool across a (loopback) network boundary: the 13-doc
    corpus dispatched to real ``python -m repro worker`` subprocesses at
    1 and 2 workers, byte-compared against the sequential reference.
    Every task carries a deterministic :data:`REMOTE_SERVICE_DELAY`
    sleep injected through the standard fault plan, so the steady-state
    number measures latency overlap (what a second worker actually
    buys) rather than raw single-core compute.  The steady rate is
    computed over the *sum* of all steady passes — one 13-document pass
    is tens of milliseconds, far too noisy on a shared host.  Worker
    names are fixed so consistent-hash placement (and therefore the
    2-worker load split) is reproducible run to run."""
    import os
    import subprocess

    from repro.service.faults import FaultPlan, FaultSpec
    from repro.service.remote import RemoteWorkerHub

    documents = fault_documents()
    SpecCC.clear_caches()
    baseline = BatchChecker(config=_config(), workers=1).check_documents(documents)
    canonical = [json.dumps(result.data, sort_keys=True) for result in baseline]

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )

    def spawn(port: int, name: str) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"127.0.0.1:{port}",
                "--name",
                name,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    delay_plan = FaultPlan(
        [FaultSpec(kind="delay", seconds=REMOTE_SERVICE_DELAY, times=-1)],
        seed=7,
    )
    steady_passes = 2 if quick else 4
    results: Dict[str, object] = {
        "documents": len(documents),
        "injected_delay_seconds": REMOTE_SERVICE_DELAY,
    }
    byte_identical = True
    steady_rates: Dict[int, float] = {}
    for count in (1, 2):
        hub = RemoteWorkerHub(min_workers=count, register_timeout=120.0)
        hub.start()
        SpecCC.clear_caches()
        pool = WorkerPool(
            config=_config(), shards=8, remote=hub, fault_plan=delay_plan
        )
        procs = [spawn(hub.port, f"w{index}") for index in range(count)]
        try:
            start = time.perf_counter()
            pool.ensure_started()
            startup = time.perf_counter() - start

            start = time.perf_counter()
            tasks = pool.check_documents(documents)
            cold_seconds = time.perf_counter() - start
            payload = [json.dumps(task.data, sort_keys=True) for task in tasks]
            byte_identical = byte_identical and payload == canonical

            # Steady state is timed over the sum of all warm passes: a
            # single 13-document pass lasts tens of milliseconds, which
            # is noise on a shared host.
            start = time.perf_counter()
            for _ in range(steady_passes):
                tasks = pool.check_documents(documents)
                payload = [
                    json.dumps(task.data, sort_keys=True) for task in tasks
                ]
                byte_identical = byte_identical and payload == canonical
            steady_seconds = time.perf_counter() - start
            steady_docs = len(documents) * steady_passes

            steady_rates[count] = steady_docs / steady_seconds
            stats = pool.stats()
            results[str(count)] = {
                "startup_seconds": startup,
                "cold": {
                    "seconds": cold_seconds,
                    "docs_per_sec": _rate(len(documents), cold_seconds),
                },
                "steady": {
                    "seconds": steady_seconds,
                    "docs_per_sec": _rate(steady_docs, steady_seconds),
                    "passes": steady_passes,
                },
                "tasks_per_worker": {
                    name: row["tasks"]
                    for name, row in stats["remote"]["workers"].items()
                },
            }
        finally:
            pool.shutdown(wait=False)
            hub.close()
            for proc in procs:
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=15)

    results["steady_speedup_2_vs_1"] = (
        round(steady_rates[2] / steady_rates[1], 2) if steady_rates.get(1) else None
    )
    results["byte_identical"] = byte_identical
    return results


# ------------------------------------------------------------- async serve
def client_script(client: int) -> List[dict]:
    """One client session's requests, over a client-private variable pool."""
    return [
        {
            "op": "add",
            "id": "R1",
            "text": f"If the sensor {client} is active, the device {client} is started.",
        },
        {
            "op": "add",
            "id": "R2",
            "text": f"If the button {client} is pressed, the lamp {client} is activated.",
        },
        {"op": "check", "timings": False},
        {
            "op": "update",
            "id": "R1",
            "text": f"If the sensor {client} is normal, the device {client} is started.",
        },
        {"op": "check", "timings": False},
    ]


def canonical_response(response: dict) -> str:
    """Canonical bytes of a response minus the protocol's volatile fields
    (one shared :func:`repro.service.server.normalize_response`, so this
    comparison and the test suite's cannot drift apart)."""
    from repro.service.server import normalize_response

    return json.dumps(normalize_response(response), sort_keys=True)


def bench_async_serve(quick: bool) -> Dict[str, object]:
    clients = 8
    scripts = {f"c{index}": client_script(index) for index in range(clients)}

    # Interleave the clients' requests round-robin on one async stream.
    interleaved: List[str] = []
    for step in range(max(len(s) for s in scripts.values())):
        for name, script in scripts.items():
            if step < len(script):
                interleaved.append(
                    json.dumps({**script[step], "session": name, "rid": step})
                )
    interleaved.append(json.dumps({"op": "shutdown"}))

    SpecCC.clear_caches()
    out = io.StringIO()
    start = time.perf_counter()
    serve_async(io.StringIO("\n".join(interleaved) + "\n"), out, tool=SpecCC(_config()))
    seconds = time.perf_counter() - start
    requests = len(interleaved)

    by_session: Dict[str, List[dict]] = {name: [] for name in scripts}
    for line in out.getvalue().splitlines():
        response = json.loads(line)
        if response.get("session") in by_session:
            by_session[response["session"]].append(response)
    for responses in by_session.values():  # arrival order == rid order
        responses.sort(key=lambda r: r["rid"])

    # Reference: each session run alone through the sequential serve loop.
    responses_match = True
    for name, script in scripts.items():
        SpecCC.clear_caches()
        reference_out = io.StringIO()
        serve(
            io.StringIO("\n".join(json.dumps(r) for r in script) + "\n"),
            reference_out,
            tool=SpecCC(_config()),
        )
        reference = [
            canonical_response(json.loads(line))
            for line in reference_out.getvalue().splitlines()
        ]
        got = [canonical_response(response) for response in by_session[name]]
        responses_match = responses_match and got == reference

    return {
        "clients": clients,
        "requests": requests,
        "seconds": seconds,
        "requests_per_sec": _rate(requests, seconds),
        "responses_match": responses_match,
    }


def build_report(quick: bool) -> Dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "edit_loop": bench_edit_loop(quick),
        "batch": bench_batch(quick),
        "fault_recovery": bench_fault_recovery(quick),
        "async_serve": bench_async_serve(quick),
        "recovery": bench_recovery(quick),
        "remote": bench_remote(quick),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes/worker counts for CI smoke runs",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    loop = report["edit_loop"]
    print(
        f"edit_loop: {loop['requirements']} reqs x {loop['edits']} edits  "
        f"incremental {loop['incremental_seconds']:.3f}s  "
        f"fresh {loop['fresh_seconds']:.3f}s  "
        f"speedup {loop['speedup']}x  "
        f"(<= {loop['max_components_reanalyzed_per_edit']} components/edit)"
    )
    for workers, data in sorted(report["batch"]["thread"].items()):
        print(
            f"batch[thread x{workers}]: {data['seconds']:.3f}s  "
            f"{data['docs_per_sec']} docs/s"
        )
    fresh = report["batch"].get("process_fresh", {})
    for workers, data in sorted(fresh.items()):
        if workers != "error":
            print(
                f"batch[process-fresh x{workers}]: {data['seconds']:.3f}s  "
                f"{data['docs_per_sec']} docs/s  (cold start per task)"
            )
    pool = report["batch"].get("pool", {})
    for workers, data in sorted(pool.items()):
        if workers != "error":
            print(
                f"batch[pool x{workers}]: startup {data['startup_seconds']:.3f}s  "
                f"cold {data['cold']['docs_per_sec']} docs/s  "
                f"steady {data['steady']['docs_per_sec']} docs/s  "
                f"({data['steady_speedup_vs_thread1']}x thread x1, "
                f"worker hit rate {data['stats']['worker_cache']['hit_rate']})"
            )
    print(f"deterministic: {report['batch']['deterministic']}")
    fault = report["fault_recovery"]
    print(
        f"fault_recovery: clean {fault['clean']['docs_per_sec']} docs/s  "
        f"one-crash {fault['one_crash']['docs_per_sec']} docs/s "
        f"(+{fault['one_crash']['added_latency_seconds']}s, "
        f"{fault['one_crash']['restarts']} restart)  "
        f"degraded {fault['degraded']['docs_per_sec']} docs/s  "
        f"byte_identical: {fault['byte_identical']}"
    )
    async_serve = report["async_serve"]
    print(
        f"async_serve: {async_serve['clients']} clients  "
        f"{async_serve['requests']} requests in {async_serve['seconds']:.3f}s  "
        f"({async_serve['requests_per_sec']} req/s)  "
        f"responses_match: {async_serve['responses_match']}"
    )
    recovery = report["recovery"]
    print(
        f"recovery: serve {recovery['serve']['seconds']:.3f}s "
        f"({recovery['serve']['appends']} appends, "
        f"{recovery['serve']['compactions']} compactions)  "
        f"replay {recovery['replay']['seconds']:.3f}s "
        f"({recovery['replay']['replayed_records']} records)  "
        f"cold {recovery['cold']['seconds']:.3f}s  "
        f"speedup {recovery['speedup']}x  "
        f"byte_identical: {recovery['byte_identical']}"
    )
    remote = report["remote"]
    for count in ("1", "2"):
        data = remote[count]
        print(
            f"remote[x{count}]: startup {data['startup_seconds']:.3f}s  "
            f"cold {data['cold']['docs_per_sec']} docs/s  "
            f"steady {data['steady']['docs_per_sec']} docs/s"
        )
    print(
        f"remote: steady speedup 2 vs 1 = {remote['steady_speedup_2_vs_1']}x  "
        f"byte_identical: {remote['byte_identical']}"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
