"""Service-layer benchmark runner — emits ``BENCH_service.json``.

Measures the two workloads the :mod:`repro.service` subsystem exists for:

* **edit_loop**: the paper's maintenance scenario — an N-requirement
  document, k single-sentence edits, re-checked after every edit.
  *incremental* uses one long-lived :class:`repro.SpecSession` (only the
  edited component is re-translated/re-analysed); *fresh* clears every
  cache and runs a new ``SpecCC.check`` per edit, which is what the
  one-shot CLI amounted to before this subsystem existed.
* **batch**: throughput in documents/second over the generated Table-I
  component specifications at 1/4/8 workers (thread backend, shared
  caches; optionally the process backend), with a byte-identity check
  that parallel verdict reports equal the sequential ones.

Usage (from the repository root)::

    PYTHONPATH=src python benchmarks/bench_service.py           # -> BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick   # smoke run (CI)
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import SpecCC, SpecCCConfig, SpecSession, TranslationOptions  # noqa: E402
from repro.casestudies import component_requirements  # noqa: E402
from repro.service.batch import BatchChecker  # noqa: E402

SCHEMA = "repro-bench-service/1"


def _config() -> SpecCCConfig:
    return SpecCCConfig(translation=TranslationOptions(next_as_x=False))


# --------------------------------------------------------------- edit loop
def edit_workload(size: int) -> List[Tuple[str, str]]:
    """*size* single-requirement components over disjoint variable pools."""
    return [
        (
            f"R{index}",
            f"If the sensor {index} is active, the device {index} is started.",
        )
        for index in range(1, size + 1)
    ]


def edit_sequence(size: int, edits: int) -> List[Tuple[str, str]]:
    """k single-sentence edits cycling through the document."""
    sequence = []
    for edit in range(edits):
        index = (edit * 7) % size + 1  # stride so edits spread over the doc
        adjective = "normal" if edit % 2 == 0 else "active"
        sequence.append(
            (
                f"R{index}",
                f"If the sensor {index} is {adjective}, "
                f"the device {index} is started.",
            )
        )
    return sequence


def bench_edit_loop(quick: bool) -> Dict[str, object]:
    size = 12 if quick else 40
    edits = 4 if quick else 12
    requirements = edit_workload(size)
    sequence = edit_sequence(size, edits)

    # Incremental: one session, caches warm across the whole loop.
    SpecCC.clear_caches()
    session = SpecSession(SpecCC(_config()))
    for identifier, sentence in requirements:
        session.add(identifier, sentence)
    first = session.check()
    incremental_verdicts = []
    reanalyzed_per_edit = []
    start = time.perf_counter()
    for identifier, sentence in sequence:
        session.update(identifier, sentence)
        report = session.check()
        incremental_verdicts.append(report.verdict.value)
        reanalyzed_per_edit.append(len(report.delta.reanalyzed))
    incremental_seconds = time.perf_counter() - start

    # Fresh: what re-running the one-shot pipeline per edit costs.  Caches
    # are cleared per edit — a fresh process has nothing warmed.
    state = dict(requirements)
    fresh_verdicts = []
    start = time.perf_counter()
    for identifier, sentence in sequence:
        state[identifier] = sentence
        SpecCC.clear_caches()
        tool = SpecCC(_config())
        report = tool.check(list(state.items()))
        fresh_verdicts.append(report.verdict.value)
    fresh_seconds = time.perf_counter() - start

    return {
        "requirements": size,
        "edits": edits,
        "first_check_seconds": first.seconds,
        "incremental_seconds": incremental_seconds,
        "fresh_seconds": fresh_seconds,
        "speedup": (
            round(fresh_seconds / incremental_seconds, 2)
            if incremental_seconds > 0
            else None
        ),
        "max_components_reanalyzed_per_edit": max(reanalyzed_per_edit),
        "verdicts_match": incremental_verdicts == fresh_verdicts,
        "verdicts": incremental_verdicts,
    }


# -------------------------------------------------------------------- batch
def batch_documents(quick: bool) -> List[Tuple[str, List[Tuple[str, str]]]]:
    rows = sorted(component_requirements().items())
    if quick:
        rows = rows[:4]
    return [(f"cara-{row}", list(reqs)) for row, reqs in rows]


def bench_batch(quick: bool) -> Dict[str, object]:
    documents = batch_documents(quick)
    worker_counts = (1, 4) if quick else (1, 4, 8)
    results: Dict[str, object] = {"documents": len(documents), "thread": {}}

    canonical = None
    deterministic = True
    for workers in worker_counts:
        SpecCC.clear_caches()
        checker = BatchChecker(config=_config(), workers=workers)
        start = time.perf_counter()
        batch = checker.check_documents(documents)
        seconds = time.perf_counter() - start
        payload = [json.dumps(result.data, sort_keys=True) for result in batch]
        if canonical is None:
            canonical = payload
        deterministic = deterministic and payload == canonical
        results["thread"][str(workers)] = {
            "seconds": seconds,
            "docs_per_sec": round(len(documents) / seconds, 2) if seconds else None,
        }

    try:
        SpecCC.clear_caches()
        checker = BatchChecker(config=_config(), workers=4, backend="process")
        start = time.perf_counter()
        batch = checker.check_documents(documents)
        seconds = time.perf_counter() - start
        payload = [json.dumps(result.data, sort_keys=True) for result in batch]
        deterministic = deterministic and payload == canonical
        results["process"] = {
            "4": {
                "seconds": seconds,
                "docs_per_sec": round(len(documents) / seconds, 2) if seconds else None,
            }
        }
    except Exception as error:  # pragma: no cover - sandboxed CI runners
        results["process"] = {"error": str(error)}

    results["deterministic"] = deterministic
    return results


def build_report(quick: bool) -> Dict:
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "edit_loop": bench_edit_loop(quick),
        "batch": bench_batch(quick),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes/worker counts for CI smoke runs",
    )
    args = parser.parse_args(argv)

    report = build_report(quick=args.quick)
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    loop = report["edit_loop"]
    print(
        f"edit_loop: {loop['requirements']} reqs x {loop['edits']} edits  "
        f"incremental {loop['incremental_seconds']:.3f}s  "
        f"fresh {loop['fresh_seconds']:.3f}s  "
        f"speedup {loop['speedup']}x  "
        f"(<= {loop['max_components_reanalyzed_per_edit']} components/edit)"
    )
    for workers, data in sorted(report["batch"]["thread"].items()):
        print(
            f"batch[thread x{workers}]: {data['seconds']:.3f}s  "
            f"{data['docs_per_sec']} docs/s"
        )
    process = report["batch"].get("process", {})
    for workers, data in sorted(process.items()):
        if workers != "error":
            print(
                f"batch[process x{workers}]: {data['seconds']:.3f}s  "
                f"{data['docs_per_sec']} docs/s"
            )
    print(f"deterministic: {report['batch']['deterministic']}")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
