"""Structural validator for Chrome trace-event JSON written by repro.

Checks the output of ``python -m repro check --trace-out trace.json``
(and of :meth:`repro.obs.Tracer.export_chrome` generally) against the
subset of the trace-event format the exporter promises:

* the file is a JSON object with a ``traceEvents`` list;
* every event carries ``name``/``ph``/``pid``/``tid`` and (for B/E/X)
  a numeric non-negative ``ts``;
* only phases ``B``, ``E``, ``X`` and ``M`` (metadata) appear;
* per ``(pid, tid)`` track, ``B``/``E`` events nest properly — every
  ``E`` matches the name of the innermost open ``B``, timestamps are
  monotone non-decreasing, and no span is left open at the end.

These are exactly the invariants Perfetto / ``chrome://tracing`` need
to render nested slices, so a file that passes here loads there.

Usage::

    python benchmarks/trace_schema.py trace.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

ALLOWED_PHASES = {"B", "E", "X", "M"}


class TraceSchemaError(ValueError):
    """The trace file violates the exporter's format contract."""


def validate_events(events: List[dict]) -> Dict[str, int]:
    """Validate a ``traceEvents`` list; return summary counts.

    Raises :class:`TraceSchemaError` on the first violation, with the
    offending event index in the message.
    """
    if not isinstance(events, list):
        raise TraceSchemaError("traceEvents is not a list")
    stacks: Dict[Tuple[object, object], List[str]] = {}
    last_ts: Dict[Tuple[object, object], float] = {}
    spans = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise TraceSchemaError(f"event {index} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise TraceSchemaError(f"event {index} is missing {key!r}")
        phase = event["ph"]
        if phase not in ALLOWED_PHASES:
            raise TraceSchemaError(
                f"event {index} has unexpected phase {phase!r}"
            )
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise TraceSchemaError(f"event {index} has invalid ts {ts!r}")
        track = (event["pid"], event["tid"])
        if ts < last_ts.get(track, 0.0):
            raise TraceSchemaError(
                f"event {index} goes back in time on track {track}: "
                f"{ts} < {last_ts[track]}"
            )
        last_ts[track] = float(ts)
        stack = stacks.setdefault(track, [])
        if phase == "B":
            stack.append(event["name"])
            spans += 1
        elif phase == "E":
            if not stack:
                raise TraceSchemaError(
                    f"event {index}: E with no open B on track {track}"
                )
            opened = stack.pop()
            if opened != event["name"]:
                raise TraceSchemaError(
                    f"event {index}: E {event['name']!r} closes B {opened!r}"
                )
        else:  # X: a complete event, needs a non-negative duration
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceSchemaError(
                    f"event {index} (X) has invalid dur {dur!r}"
                )
            spans += 1
    for track, stack in stacks.items():
        if stack:
            raise TraceSchemaError(
                f"track {track} ends with unclosed spans: {stack}"
            )
    return {
        "events": len(events),
        "spans": spans,
        "tracks": len(stacks),
    }


def validate_file(path: Path) -> Dict[str, int]:
    """Load and validate one trace file; return summary counts."""
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise TraceSchemaError(f"cannot load {path}: {error}") from error
    if isinstance(document, list):  # the bare JSON Array Format
        events = document
    elif isinstance(document, dict) and "traceEvents" in document:
        events = document["traceEvents"]
    else:
        raise TraceSchemaError(
            f"{path} is neither an event array nor an object with a "
            "traceEvents list"
        )
    summary = validate_events(events)
    if summary["spans"] == 0:
        raise TraceSchemaError(f"{path} contains no spans")
    return summary


def main(argv: List[str] = None) -> int:
    args = sys.argv[1:] if argv is None else list(argv)
    if len(args) != 1:
        print("usage: python benchmarks/trace_schema.py <trace.json>",
              file=sys.stderr)
        return 2
    path = Path(args[0])
    try:
        summary = validate_file(path)
    except TraceSchemaError as error:
        print(f"INVALID: {error}", file=sys.stderr)
        return 1
    print(
        f"{path}: {summary['events']} events, {summary['spans']} spans, "
        f"{summary['tracks']} tracks — well-formed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
