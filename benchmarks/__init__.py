"""Table I / figure reproduction benchmarks and the core perf runner.

A package so ``pytest benchmarks/bench_table1_cara.py`` can resolve the
shared helpers in ``conftest.py`` via a relative import.
"""
